//! IR verifier: machine-checked invariants between pipeline stages.
//!
//! Each stage of `compile_ir` (`xform → opt → regalloc → codegen`) must
//! preserve a set of structural invariants; a transform bug otherwise
//! surfaces only as a wrong number from the simulator or a silent mistune.
//! [`verify_stage`] checks the linear IR after a stage and returns
//! structured [`Diagnostic`]s with stable codes:
//!
//! | code | invariant |
//! |------|-----------|
//! | V100 | every use dominated by a def (definite assignment)            |
//! | V101 | vreg class consistency (`VClass` vs operand kind and width)   |
//! | V102 | branch targets resolve to labels                              |
//! | V103 | no duplicate labels                                           |
//! | V104 | cold blocks re-enter the body via an explicit branch          |
//! | V105 | pointer bumps consistent with the unroll/vector factor        |
//! | V107 | two-address ops stay tied (`dst == a`)                        |
//! | V108 | post-regalloc: every vreg mapped, class-correct               |
//! | V109 | post-regalloc: no overlapping live ranges share a register    |
//! | V110 | post-regalloc: at most 8 registers per class live             |
//! | V111 | post-regalloc: physical register indices in range             |
//! | V112 | pointer ids resolve to declared pointers                      |
//! | V113 | post-codegen: the program terminates with `Halt`              |
//! | V114 | post-codegen: jump targets resolve inside the program         |
//! | V115 | post-codegen: frame bytes match the allocator's spill slots   |
//!
//! The same analyses power [`precheck`], the search-side legality filter
//! that rejects doomed candidates *before* the compile/simulate expense.

use crate::analysis::AnalysisReport;
use crate::dataflow;
use crate::diag::Diagnostic;
use crate::ir::*;
use crate::params::TransformParams;
use crate::regalloc::{Allocation, Phys};
use crate::xform::LinearKernel;

/// Registers per architectural class (the paper's 8 + 8 x86-like target).
pub const REGS_PER_CLASS: usize = 8;

fn wclass(w: Width) -> VClass {
    match w {
        Width::S => VClass::F,
        Width::V => VClass::Vec,
    }
}

fn class_name(c: VClass) -> &'static str {
    match c {
        VClass::Int => "Int",
        VClass::F => "F",
        VClass::Vec => "Vec",
    }
}

/// Verify the linear IR after `stage`. `orig` is the pre-transform kernel
/// (for pointer-bump expectations), `alloc` the register assignment when
/// the stage runs post-regalloc. Returns every violated invariant; an
/// empty vector means the IR is well-formed.
pub fn verify_stage(
    stage: &'static str,
    lin: &LinearKernel,
    orig: &KernelIr,
    params: &TransformParams,
    rep: &AnalysisReport,
    alloc: Option<&Allocation>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_ptrs(stage, lin, &mut diags);
    check_classes(stage, lin, orig, &mut diags);
    let labels_ok = check_labels(stage, lin, &mut diags);
    check_tied(stage, lin, &mut diags);
    if labels_ok {
        let cfg = dataflow::build_cfg(&lin.ops);
        check_defined(stage, lin, &cfg, &mut diags);
        check_cold_blocks(stage, lin, &mut diags);
        check_bumps(stage, lin, orig, params, rep, &mut diags);
        if let Some(alloc) = alloc {
            check_alloc(stage, lin, &cfg, alloc, &mut diags);
        }
    }
    diags
}

/// V112: every PtrId indexes a declared pointer.
fn check_ptrs(stage: &'static str, lin: &LinearKernel, diags: &mut Vec<Diagnostic>) {
    let n = lin.ptrs.len() as u32;
    for (i, op) in lin.ops.iter().enumerate() {
        let ptr = match op {
            Op::FLd { mem, .. } | Op::FSt { mem, .. } => Some(mem.ptr),
            Op::FBin { b: RoM::Mem(m), .. } | Op::FCmp { b: RoM::Mem(m), .. } => Some(m.ptr),
            Op::Prefetch { ptr, .. } | Op::PtrBump { ptr, .. } => Some(*ptr),
            _ => None,
        };
        if let Some(PtrId(p)) = ptr {
            if p >= n {
                diags.push(
                    Diagnostic::error(
                        "V112",
                        stage,
                        format!("op references pointer p{p} but only {n} pointers are declared"),
                    )
                    .at_op(i),
                );
            }
        }
    }
}

/// V101: class consistency. Every operand's vreg class must match what the
/// op demands (`Width::S` ⇒ scalar F, `Width::V` ⇒ Vec, integer ops ⇒
/// Int); this also catches mixed scalar/vector widths on one vreg after
/// vectorization, and out-of-range vreg ids.
fn check_classes(
    stage: &'static str,
    lin: &LinearKernel,
    orig: &KernelIr,
    diags: &mut Vec<Diagnostic>,
) {
    let expect = |i: usize, v: V, want: VClass, role: &str, diags: &mut Vec<Diagnostic>| match lin
        .vregs
        .get(v as usize)
    {
        None => diags.push(
            Diagnostic::error(
                "V101",
                stage,
                format!(
                    "{role} v{v} out of range ({} vregs declared)",
                    lin.vregs.len()
                ),
            )
            .at_op(i),
        ),
        Some(&got) if got != want => {
            let mut d = Diagnostic::error(
                "V101",
                stage,
                format!(
                    "{role} v{v} has class {} but the op requires {}",
                    class_name(got),
                    class_name(want)
                ),
            )
            .at_op(i);
            let line = orig.vreg_line(v);
            if line != 0 {
                d = d.at_line(line);
            }
            diags.push(d);
        }
        _ => {}
    };
    for (i, op) in lin.ops.iter().enumerate() {
        match op {
            Op::FLd { dst, w, .. } | Op::FZero { dst, w } | Op::FSpillLd { dst, w, .. } => {
                expect(i, *dst, wclass(*w), "dst", diags)
            }
            Op::FSt { src, w, .. } | Op::FSpillSt { src, w, .. } => {
                expect(i, *src, wclass(*w), "src", diags)
            }
            Op::FMov { dst, src, w } | Op::FAbs { dst, src, w } => {
                expect(i, *dst, wclass(*w), "dst", diags);
                expect(i, *src, wclass(*w), "src", diags);
            }
            Op::FConst { dst, .. } => expect(i, *dst, VClass::F, "dst", diags),
            Op::FBin { dst, a, b, w, .. } => {
                expect(i, *dst, wclass(*w), "dst", diags);
                expect(i, *a, wclass(*w), "operand a", diags);
                if let RoM::Reg(r) = b {
                    expect(i, *r, wclass(*w), "operand b", diags);
                }
            }
            Op::FSqrt { dst, src } => {
                expect(i, *dst, VClass::F, "dst", diags);
                expect(i, *src, VClass::F, "src", diags);
            }
            Op::FBcast { dst, src } => {
                expect(i, *dst, VClass::Vec, "dst", diags);
                expect(i, *src, VClass::F, "src", diags);
            }
            Op::FHSum { dst, src } | Op::FHMax { dst, src } => {
                expect(i, *dst, VClass::F, "dst", diags);
                expect(i, *src, VClass::Vec, "src", diags);
            }
            Op::FCmp { a, b } => {
                expect(i, *a, VClass::F, "operand a", diags);
                if let RoM::Reg(r) = b {
                    expect(i, *r, VClass::F, "operand b", diags);
                }
            }
            Op::IConst { dst, .. } | Op::ISpillLd { dst, .. } | Op::IParamMov { dst, .. } => {
                expect(i, *dst, VClass::Int, "dst", diags)
            }
            Op::IMov { dst, src } => {
                expect(i, *dst, VClass::Int, "dst", diags);
                expect(i, *src, VClass::Int, "src", diags);
            }
            Op::IBin { dst, a, b, .. } => {
                expect(i, *dst, VClass::Int, "dst", diags);
                expect(i, *a, VClass::Int, "operand a", diags);
                if let IOrImm::Reg(r) = b {
                    expect(i, *r, VClass::Int, "operand b", diags);
                }
            }
            Op::ICmp { a, b } => {
                expect(i, *a, VClass::Int, "operand a", diags);
                if let IOrImm::Reg(r) = b {
                    expect(i, *r, VClass::Int, "operand b", diags);
                }
            }
            Op::IDecFlags(v) => expect(i, *v, VClass::Int, "operand", diags),
            Op::ISpillSt { src, .. } => expect(i, *src, VClass::Int, "src", diags),
            Op::FParamMov { dst, .. } => expect(i, *dst, VClass::F, "dst", diags),
            Op::Label(_)
            | Op::Br(_)
            | Op::CondBr { .. }
            | Op::Prefetch { .. }
            | Op::PtrBump { .. } => {}
        }
    }
    match lin.ret {
        RetVal::F(v) => expect(lin.ops.len(), v, VClass::F, "return value", diags),
        RetVal::I(v) => expect(lin.ops.len(), v, VClass::Int, "return value", diags),
        RetVal::None => {}
    }
}

/// V102 (dangling branch) and V103 (duplicate label). Returns whether the
/// label structure is sound enough for CFG-based checks.
fn check_labels(stage: &'static str, lin: &LinearKernel, diags: &mut Vec<Diagnostic>) -> bool {
    let mut seen = std::collections::HashMap::<LabelId, usize>::new();
    let mut ok = true;
    for (i, op) in lin.ops.iter().enumerate() {
        if let Op::Label(l) = op {
            if let Some(first) = seen.insert(*l, i) {
                ok = false;
                diags.push(
                    Diagnostic::error(
                        "V103",
                        stage,
                        format!("label L{} defined twice (first at op {first})", l.0),
                    )
                    .at_op(i),
                );
            }
        }
    }
    for (i, op) in lin.ops.iter().enumerate() {
        let target = match op {
            Op::Br(l) => Some(*l),
            Op::CondBr { target, .. } => Some(*target),
            _ => None,
        };
        if let Some(l) = target {
            if !seen.contains_key(&l) {
                ok = false;
                diags.push(
                    Diagnostic::error("V102", stage, format!("branch to undefined label L{}", l.0))
                        .at_op(i),
                );
            }
        }
    }
    ok
}

/// V107: `FBin`/`IBin` stay in the tied two-address form the lowerer
/// establishes and code generation requires.
fn check_tied(stage: &'static str, lin: &LinearKernel, diags: &mut Vec<Diagnostic>) {
    for (i, op) in lin.ops.iter().enumerate() {
        match op {
            Op::FBin { dst, a, .. } | Op::IBin { dst, a, .. } if dst != a => diags.push(
                Diagnostic::error(
                    "V107",
                    stage,
                    format!("untied two-address op: dst v{dst} != a v{a}"),
                )
                .at_op(i),
            ),
            _ => {}
        }
    }
}

/// V100: definite assignment — on every path from entry, each vreg use is
/// preceded by a def.
fn check_defined(
    stage: &'static str,
    lin: &LinearKernel,
    cfg: &dataflow::Cfg,
    diags: &mut Vec<Diagnostic>,
) {
    for (i, v) in dataflow::undefined_uses(&lin.ops, lin.vregs.len(), &[], cfg) {
        diags.push(
            Diagnostic::error(
                "V100",
                stage,
                format!("v{v} may be used before it is defined"),
            )
            .at_op(i),
        );
    }
}

/// V104: the cold region (between the body's jump to the halt label and
/// the halt label itself) may only re-enter the body through explicit
/// unconditional branches — no block may fall through into the next cold
/// block or off the end into the halt.
fn check_cold_blocks(stage: &'static str, lin: &LinearKernel, diags: &mut Vec<Diagnostic>) {
    // Halt label = last label in the stream (linearization appends it;
    // branch cleanup preserves the last label).
    let Some((halt_pos, halt)) = lin
        .ops
        .iter()
        .enumerate()
        .rev()
        .find_map(|(i, op)| match op {
            Op::Label(l) => Some((i, *l)),
            _ => None,
        })
    else {
        return;
    };
    let Some(br_pos) = lin.ops[..halt_pos]
        .iter()
        .position(|op| matches!(op, Op::Br(l) if *l == halt))
    else {
        return;
    };
    let region = br_pos + 1..halt_pos;
    if region.is_empty() {
        return;
    }
    for (i, op) in lin.ops[region.clone()].iter().enumerate() {
        let i = i + region.start;
        if matches!(op, Op::Label(_)) && i > region.start && !matches!(lin.ops[i - 1], Op::Br(_)) {
            diags.push(
                Diagnostic::error(
                    "V104",
                    stage,
                    "cold block falls through into the next cold block",
                )
                .at_op(i),
            );
        }
    }
    if !matches!(lin.ops[halt_pos - 1], Op::Br(_)) {
        diags.push(
            Diagnostic::error(
                "V104",
                stage,
                "cold block falls through into the halt label instead of re-entering the body",
            )
            .at_op(halt_pos - 1),
        );
    }
}

/// V105: the main loop's pointer bumps must equal the original
/// per-iteration bump scaled by the unroll factor and (when vectorized)
/// the vector length.
fn check_bumps(
    stage: &'static str,
    lin: &LinearKernel,
    orig: &KernelIr,
    params: &TransformParams,
    rep: &AnalysisReport,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(l) = &orig.loop_ else { return };
    let do_simd = params.simd && rep.vectorizable.is_ok();
    let veclen = if do_simd {
        orig.prec.veclen() as i64
    } else {
        1
    };
    let unroll = params.unroll.max(1) as i64;
    for &(p, b) in &l.bumps {
        if b == 0 {
            continue;
        }
        let expected = b * veclen * unroll;
        let found = lin
            .ops
            .iter()
            .any(|op| matches!(op, Op::PtrBump { ptr, elems } if *ptr == p && *elems == expected));
        if !found {
            let name = orig
                .ptrs
                .get(p.0 as usize)
                .map(|pi| pi.name.clone())
                .unwrap_or_else(|| format!("p{}", p.0));
            diags.push(Diagnostic::error(
                "V105",
                stage,
                format!(
                    "pointer `{name}` bumps by {b}/iter but no latch bump of \
                     {expected} elems (unroll {unroll} × veclen {veclen}) exists"
                ),
            ));
        }
    }
}

/// V108–V111: post-regalloc invariants over the final op stream.
fn check_alloc(
    stage: &'static str,
    lin: &LinearKernel,
    cfg: &dataflow::Cfg,
    alloc: &Allocation,
    diags: &mut Vec<Diagnostic>,
) {
    let class_of = |v: V| lin.vregs.get(v as usize).copied();
    let check_mapped = |i: usize, v: V, diags: &mut Vec<Diagnostic>| match alloc.map.get(&v) {
        None => diags.push(
            Diagnostic::error("V108", stage, format!("v{v} has no register assignment")).at_op(i),
        ),
        Some(&phys) => {
            let (idx, phys_is_int) = match phys {
                Phys::I(r) => (r, true),
                Phys::F(r) => (r, false),
            };
            if idx as usize >= REGS_PER_CLASS {
                diags.push(
                    Diagnostic::error(
                        "V111",
                        stage,
                        format!("v{v} assigned out-of-range register {phys:?}"),
                    )
                    .at_op(i),
                );
            }
            let want_int = class_of(v) == Some(VClass::Int);
            if phys_is_int != want_int {
                diags.push(
                    Diagnostic::error(
                        "V108",
                        stage,
                        format!(
                            "v{v} (class {}) assigned to the wrong bank ({phys:?})",
                            class_name(class_of(v).unwrap_or(VClass::Int))
                        ),
                    )
                    .at_op(i),
                );
            }
        }
    };
    for (i, op) in lin.ops.iter().enumerate() {
        for v in op.uses().into_iter().chain(op.def()) {
            check_mapped(i, v, diags);
        }
    }

    let exit_live: Vec<V> = match lin.ret {
        RetVal::F(v) | RetVal::I(v) => vec![v],
        RetVal::None => vec![],
    };
    let live = dataflow::liveness(&lin.ops, lin.vregs.len(), &exit_live, cfg);
    let per_op = dataflow::per_op_live_out(&lin.ops, cfg, &live);

    // V110: pressure — at most 8 live registers per class anywhere.
    for (i, live_out) in per_op.iter().enumerate() {
        let (mut ints, mut fps) = (0usize, 0usize);
        for v in live_out.iter() {
            match class_of(v as V) {
                Some(VClass::Int) => ints += 1,
                Some(_) => fps += 1,
                None => {}
            }
        }
        for (count, bank) in [(ints, "integer"), (fps, "FP")] {
            if count > REGS_PER_CLASS {
                diags.push(
                    Diagnostic::error(
                        "V110",
                        stage,
                        format!("{count} {bank} registers live at once (max {REGS_PER_CLASS})"),
                    )
                    .at_op(i),
                );
            }
        }
    }

    // V109: a def must not clobber a different live vreg in the same
    // physical register.
    for (i, op) in lin.ops.iter().enumerate() {
        let Some(d) = op.def() else { continue };
        let Some(&pd) = alloc.map.get(&d) else {
            continue;
        };
        for v in per_op[i].iter() {
            let v = v as V;
            if v != d && alloc.map.get(&v) == Some(&pd) {
                diags.push(
                    Diagnostic::error(
                        "V109",
                        stage,
                        format!("def of v{d} clobbers live v{v} (both in {pd:?})"),
                    )
                    .at_op(i),
                );
            }
        }
    }
}

/// Post-codegen sanity checks on the emitted machine program.
pub fn verify_compiled(
    out: &crate::codegen::CompiledKernel,
    alloc: &Allocation,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let stage = "codegen";
    if !matches!(out.program.insts.last(), Some(ifko_xsim::isa::Inst::Halt)) {
        diags.push(Diagnostic::error(
            "V113",
            stage,
            "program does not end with Halt (execution would run off the end)",
        ));
    }
    for (l, &target) in out.program.labels.iter().enumerate() {
        if target > out.program.insts.len() {
            diags.push(Diagnostic::error(
                "V114",
                stage,
                format!(
                    "label L{l} resolves to instruction {target} but the program has {}",
                    out.program.insts.len()
                ),
            ));
        }
    }
    let want = alloc.frame_slots as u64 * 16;
    if out.frame_bytes != want {
        diags.push(Diagnostic::error(
            "V115",
            stage,
            format!(
                "frame_bytes {} does not match {} spill slots ({} bytes)",
                out.frame_bytes, alloc.frame_slots, want
            ),
        ));
    }
    diags
}

// ---------------------------------------------------------------------------
// Search-side legality pruning
// ---------------------------------------------------------------------------

/// Why a candidate was rejected before compiling/simulating.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reject {
    /// The kernel has no `!! TUNE LOOP`; no transform applies.
    NoTunedLoop,
    /// SIMD requested but the analysis found a vectorization blocker.
    SimdBlocked,
    /// Accumulator expansion requested but no `ReductionAdd` scalar exists.
    NoAeCandidates,
    /// Non-temporal writes requested but the loop stores to no array.
    WntNoTargets,
    /// Unroll factor beyond the analysis' safe maximum.
    UnrollTooLarge,
}

impl Reject {
    pub fn as_str(self) -> &'static str {
        match self {
            Reject::NoTunedLoop => "no-tuned-loop",
            Reject::SimdBlocked => "simd-blocked",
            Reject::NoAeCandidates => "no-ae-candidates",
            Reject::WntNoTargets => "wnt-no-targets",
            Reject::UnrollTooLarge => "unroll-too-large",
        }
    }
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Analysis-level lint over a front-ended kernel: tuning-opportunity
/// diagnostics for `ifko lint` (stable `A1xx` codes, never errors — a
/// kernel that compiles is lint-clean modulo advice).
///
/// | code | severity | meaning |
/// |------|----------|---------|
/// | A100 | warning  | no `!! TUNE LOOP` marker — the search has nothing to tune |
/// | A101 | note     | tuned loop is not vectorizable (with the blocker)  |
/// | A102 | note     | no reduction add — accumulator expansion never applies |
/// | A103 | note     | loop stores to no array — WNT never applies        |
/// | A104 | note     | no sequentially-accessed arrays — prefetch never applies |
pub fn lint_analysis(rep: &AnalysisReport) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let at = |d: Diagnostic| {
        if rep.loop_line != 0 {
            d.at_line(rep.loop_line)
        } else {
            d
        }
    };
    if !rep.has_tuned_loop {
        diags.push(Diagnostic::warning(
            "A100",
            "analysis",
            "no `!! TUNE LOOP` marker: the empirical search has nothing to tune",
        ));
        return diags; // the remaining advice is about the tuned loop
    }
    if let Err(b) = &rep.vectorizable {
        diags.push(at(Diagnostic::note(
            "A101",
            "analysis",
            format!("tuned loop is not vectorizable: {b}"),
        )));
    }
    if rep.ae_candidates.is_empty() {
        diags.push(at(Diagnostic::note(
            "A102",
            "analysis",
            "no reduction add in the tuned loop: accumulator expansion never applies",
        )));
    }
    if rep.wnt_candidates.is_empty() {
        diags.push(at(Diagnostic::note(
            "A103",
            "analysis",
            "tuned loop stores to no array: non-temporal writes never apply",
        )));
    }
    if rep.pf_candidates.is_empty() {
        diags.push(at(Diagnostic::note(
            "A104",
            "analysis",
            "no sequentially-accessed arrays: prefetch tuning never applies",
        )));
    }
    diags
}

/// Cheap legality check the evaluation engine consults before paying for
/// compile + simulate. Sound with respect to the search: a pruned
/// candidate either fails `apply_transforms` outright (`NoTunedLoop`,
/// `NoAeCandidates`) or compiles to code identical to an already-seeded
/// cheaper twin (`SimdBlocked`, `WntNoTargets` are silent no-ops), so
/// pruning never changes the tuned winner.
pub fn precheck(params: &TransformParams, rep: &AnalysisReport) -> Result<(), Reject> {
    if !rep.has_tuned_loop {
        return Err(Reject::NoTunedLoop);
    }
    if params.simd && rep.vectorizable.is_err() {
        return Err(Reject::SimdBlocked);
    }
    if params.accum_expand > 1 && rep.ae_candidates.is_empty() {
        return Err(Reject::NoAeCandidates);
    }
    if params.wnt && rep.wnt_candidates.is_empty() {
        return Err(Reject::WntNoTargets);
    }
    if params.unroll > rep.max_unroll {
        return Err(Reject::UnrollTooLarge);
    }
    Ok(())
}
