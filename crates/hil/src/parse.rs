//! Recursive-descent parser for the HIL.

use crate::ast::*;
use crate::lex::{lex, LexError, Tok, Token};
use std::collections::HashSet;

/// Parse failure with a source line.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}
impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            msg: e.msg,
        }
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Pointer-typed parameter names, needed to distinguish `X += 1;`
    /// (pointer bump) from scalar accumulation.
    pointers: HashSet<String>,
    markup: Markup,
    /// Pending `TUNE LOOP` mark-up to attach to the next loop.
    pending_tune: bool,
}

type PResult<T> = Result<T, ParseError>;

/// Parse a complete routine.
pub fn parse_routine(src: &str) -> PResult<Routine> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        pointers: HashSet::new(),
        markup: Markup::default(),
        pending_tune: false,
    };
    p.routine()
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }
    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }
    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line(),
            msg: msg.into(),
        })
    }
    fn expect(&mut self, t: Tok, what: &str) -> PResult<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }
    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.line(),
                msg: format!("expected {what}, found {other:?}"),
            }),
        }
    }
    fn keyword(&mut self, kw: &str) -> PResult<()> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other:?}")),
        }
    }
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Consume any mark-up tokens, folding them into routine/pending state.
    fn eat_markup(&mut self) -> PResult<()> {
        while let Tok::Markup(m) = self.peek() {
            let m = m.clone();
            self.bump();
            let words: Vec<&str> = m.split_whitespace().collect();
            match words.as_slice() {
                ["TUNE", "LOOP"] => self.pending_tune = true,
                ["NOPREFETCH", arr] => self.markup.no_prefetch.push(arr.to_string()),
                ["ALIAS", a, b] => self.markup.alias_ok.push((a.to_string(), b.to_string())),
                _ => return self.err(format!("unknown mark-up `!! {m}`")),
            }
        }
        Ok(())
    }

    fn routine(&mut self) -> PResult<Routine> {
        self.eat_markup()?;
        self.keyword("ROUTINE")?;
        let name = self.ident("routine name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut order = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                order.push(self.ident("parameter name")?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        self.expect(Tok::Semi, "`;`")?;

        self.keyword("PARAMS")?;
        self.expect(Tok::DoubleColon, "`::`")?;
        let mut params = Vec::new();
        loop {
            let pline = self.line();
            let pname = self.ident("parameter name")?;
            self.expect(Tok::Assign, "`=`")?;
            let ty = self.param_type()?;
            if matches!(ty, ParamType::Ptr { .. }) {
                self.pointers.insert(pname.clone());
            }
            params.push(Param {
                name: pname,
                ty,
                line: Line(pline),
            });
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::Semi, "`;`")?;
        // All declared names must appear in the header list and vice versa.
        for p in &params {
            if !order.contains(&p.name) {
                return self.err(format!("parameter `{}` not in routine header", p.name));
            }
        }
        for o in &order {
            if !params.iter().any(|p| &p.name == o) {
                return self.err(format!("header parameter `{o}` has no PARAMS declaration"));
            }
        }
        // Reorder params to header order.
        params.sort_by_key(|p| order.iter().position(|o| o == &p.name).unwrap());

        let mut scalars = Vec::new();
        if self.at_keyword("SCALARS") {
            self.bump();
            self.expect(Tok::DoubleColon, "`::`")?;
            loop {
                let sline = self.line();
                let sname = self.ident("scalar name")?;
                self.expect(Tok::Assign, "`=`")?;
                let tyname = self.ident("scalar type")?;
                let prec = match tyname.as_str() {
                    "INT" => None,
                    "FLOAT" => Some(Prec::S),
                    "DOUBLE" => Some(Prec::D),
                    other => return self.err(format!("unknown scalar type `{other}`")),
                };
                let mut out = false;
                if *self.peek() == Tok::Colon {
                    self.bump();
                    self.keyword("OUT")?;
                    out = true;
                }
                scalars.push(ScalarDecl {
                    name: sname,
                    prec,
                    out,
                    line: Line(sline),
                });
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::Semi, "`;`")?;
        }

        self.eat_markup()?;
        self.keyword("ROUT_BEGIN")?;
        let body = self.stmts_until("ROUT_END")?;
        self.keyword("ROUT_END")?;
        Ok(Routine {
            name,
            params,
            scalars,
            body,
            markup: std::mem::take(&mut self.markup),
        })
    }

    fn param_type(&mut self) -> PResult<ParamType> {
        let tyname = self.ident("parameter type")?;
        let ty = match tyname.as_str() {
            "INT" => ParamType::Int,
            "FLOAT" => ParamType::Scalar(Prec::S),
            "DOUBLE" => ParamType::Scalar(Prec::D),
            "FLOAT_PTR" | "DOUBLE_PTR" => {
                let prec = if tyname.starts_with("FLOAT") {
                    Prec::S
                } else {
                    Prec::D
                };
                let mut intent = Intent::In;
                if *self.peek() == Tok::Colon {
                    self.bump();
                    let iname = self.ident("intent")?;
                    intent = match iname.as_str() {
                        "IN" => Intent::In,
                        "OUT" => Intent::Out,
                        "INOUT" => Intent::InOut,
                        other => return self.err(format!("unknown intent `{other}`")),
                    };
                }
                ParamType::Ptr { prec, intent }
            }
            other => return self.err(format!("unknown parameter type `{other}`")),
        };
        Ok(ty)
    }

    fn stmts_until(&mut self, end_kw: &str) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            self.eat_markup()?;
            if self.at_keyword(end_kw) || *self.peek() == Tok::Eof {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        if self.at_keyword("LOOP") {
            return self.loop_stmt();
        }
        if self.at_keyword("IF") {
            return self.if_goto();
        }
        if self.at_keyword("GOTO") {
            self.bump();
            let l = self.ident("label")?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Goto(l));
        }
        if self.at_keyword("RETURN") {
            self.bump();
            let e = self.expr()?;
            self.expect(Tok::Semi, "`;`")?;
            return Ok(Stmt::Return(e));
        }
        // Label or assignment: both start with an identifier.
        let name = self.ident("statement")?;
        if *self.peek() == Tok::Colon {
            self.bump();
            return Ok(Stmt::Label(name));
        }
        // lvalue: `name` or `name[k]`
        let lhs = if *self.peek() == Tok::LBracket {
            self.bump();
            let off = self.int_const()?;
            self.expect(Tok::RBracket, "`]`")?;
            LValue::ArrayElem {
                ptr: name.clone(),
                offset: off,
            }
        } else {
            LValue::Scalar(name.clone())
        };
        let op = match self.bump() {
            Tok::Assign => AssignOp::Set,
            Tok::PlusAssign => AssignOp::Add,
            Tok::MinusAssign => AssignOp::Sub,
            Tok::StarAssign => AssignOp::Mul,
            other => {
                return Err(ParseError {
                    line: self.line(),
                    msg: format!("expected assignment operator, found {other:?}"),
                })
            }
        };
        let rhs = self.expr()?;
        self.expect(Tok::Semi, "`;`")?;
        // Pointer bump: `X += k;` where X is a pointer parameter.
        if let (LValue::Scalar(n), AssignOp::Add, Expr::IConst(k)) = (&lhs, op, &rhs) {
            if self.pointers.contains(n) {
                return Ok(Stmt::PtrBump {
                    ptr: n.clone(),
                    elems: *k,
                });
            }
        }
        if let (LValue::Scalar(n), AssignOp::Sub, Expr::IConst(k)) = (&lhs, op, &rhs) {
            if self.pointers.contains(n) {
                return Ok(Stmt::PtrBump {
                    ptr: n.clone(),
                    elems: -*k,
                });
            }
        }
        Ok(Stmt::Assign { lhs, op, rhs })
    }

    fn loop_stmt(&mut self) -> PResult<Stmt> {
        let tuned = std::mem::take(&mut self.pending_tune);
        let lline = self.line();
        self.keyword("LOOP")?;
        let var = self.ident("loop variable")?;
        self.expect(Tok::Assign, "`=`")?;
        let start = self.expr()?;
        self.expect(Tok::Comma, "`,`")?;
        let end = self.expr()?;
        let mut down = false;
        if *self.peek() == Tok::Comma {
            self.bump();
            let step = self.int_const()?;
            match step {
                -1 => down = true,
                1 => down = false,
                other => return self.err(format!("loop step must be 1 or -1, got {other}")),
            }
        }
        self.keyword("LOOP_BODY")?;
        let body = self.stmts_until("LOOP_END")?;
        self.keyword("LOOP_END")?;
        Ok(Stmt::Loop(Loop {
            var,
            start,
            end,
            down,
            body,
            tuned,
            line: Line(lline),
        }))
    }

    fn if_goto(&mut self) -> PResult<Stmt> {
        self.keyword("IF")?;
        self.expect(Tok::LParen, "`(`")?;
        let lhs = self.expr()?;
        let cmp = match self.bump() {
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::EqEq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            other => {
                return Err(ParseError {
                    line: self.line(),
                    msg: format!("expected comparison, found {other:?}"),
                })
            }
        };
        let rhs = self.expr()?;
        self.expect(Tok::RParen, "`)`")?;
        self.keyword("GOTO")?;
        let label = self.ident("label")?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(Stmt::IfGoto {
            lhs,
            cmp,
            rhs,
            label,
        })
    }

    fn int_const(&mut self) -> PResult<i64> {
        let neg = if *self.peek() == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Tok::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(ParseError {
                line: self.line(),
                msg: format!("expected integer constant, found {other:?}"),
            }),
        }
    }

    // expr := term (('+'|'-') term)*
    fn expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    // term := factor (('*'|'/') factor)*
    fn term(&mut self) -> PResult<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn factor(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::IConst(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::FConst(v))
            }
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.factor()?)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) if name == "ABS" => {
                self.bump();
                Ok(Expr::Unary(UnOp::Abs, Box::new(self.factor()?)))
            }
            Tok::Ident(name) if name == "SQRT" => {
                self.bump();
                Ok(Expr::Unary(UnOp::Sqrt, Box::new(self.factor()?)))
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LBracket {
                    self.bump();
                    let off = self.int_const()?;
                    self.expect(Tok::RBracket, "`]`")?;
                    Ok(Expr::Load {
                        ptr: name,
                        offset: off,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOT: &str = r#"
ROUTINE dot(X, Y, N);
PARAMS :: X = DOUBLE_PTR, Y = DOUBLE_PTR, N = INT;
SCALARS :: dot = DOUBLE:OUT, x = DOUBLE, y = DOUBLE;
ROUT_BEGIN
  dot = 0.0;
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
  LOOP_END
  RETURN dot;
ROUT_END
"#;

    #[test]
    fn parses_dot() {
        let r = parse_routine(DOT).unwrap();
        assert_eq!(r.name, "dot");
        assert_eq!(r.params.len(), 3);
        assert_eq!(r.scalars.len(), 3);
        let l = r.tuned_loop().expect("tuned loop");
        assert_eq!(l.var, "i");
        assert!(!l.down);
        assert_eq!(l.body.len(), 5);
        assert!(matches!(l.body[3], Stmt::PtrBump { ref ptr, elems: 1 } if ptr == "X"));
    }

    #[test]
    fn parses_amax_style_downward_loop_and_branches() {
        let src = r#"
ROUTINE amax(X, N);
PARAMS :: X = DOUBLE_PTR, N = INT;
SCALARS :: amax = DOUBLE, imax = INT:OUT, x = DOUBLE;
ROUT_BEGIN
  !! TUNE LOOP
  LOOP i = N, 0, -1
  LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax) GOTO NEWMAX;
  ENDOFLOOP:
    X += 1;
  LOOP_END
  RETURN imax;
NEWMAX:
  amax = x;
  imax = N - i;
  GOTO ENDOFLOOP;
ROUT_END
"#;
        let r = parse_routine(src).unwrap();
        let l = r.tuned_loop().unwrap();
        assert!(l.down);
        assert!(l.body.iter().any(|s| matches!(s, Stmt::IfGoto { .. })));
        assert!(l
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Label(n) if n == "ENDOFLOOP")));
        // Trailing statements after RETURN (the out-of-line NEWMAX block).
        assert!(r
            .body
            .iter()
            .any(|s| matches!(s, Stmt::Label(n) if n == "NEWMAX")));
    }

    #[test]
    fn markup_noprefetch_and_alias() {
        let src = r#"
!! NOPREFETCH X
!! ALIAS X Y
ROUTINE f(X, Y, N);
PARAMS :: X = FLOAT_PTR, Y = FLOAT_PTR:OUT, N = INT;
ROUT_BEGIN
ROUT_END
"#;
        let r = parse_routine(src).unwrap();
        assert_eq!(r.markup.no_prefetch, vec!["X"]);
        assert_eq!(r.markup.alias_ok, vec![("X".to_string(), "Y".to_string())]);
    }

    #[test]
    fn param_order_follows_header() {
        let src = r#"
ROUTINE f(N, X);
PARAMS :: X = DOUBLE_PTR, N = INT;
ROUT_BEGIN
ROUT_END
"#;
        let r = parse_routine(src).unwrap();
        assert_eq!(r.params[0].name, "N");
        assert_eq!(r.params[1].name, "X");
    }

    #[test]
    fn undeclared_header_param_rejected() {
        let src = r#"
ROUTINE f(X, M);
PARAMS :: X = DOUBLE_PTR;
ROUT_BEGIN
ROUT_END
"#;
        assert!(parse_routine(src).is_err());
    }

    #[test]
    fn scalar_minus_const_is_not_ptr_bump() {
        let src = r#"
ROUTINE f(X, N);
PARAMS :: X = DOUBLE_PTR, N = INT;
SCALARS :: s = DOUBLE;
ROUT_BEGIN
  s += 1;
  X += 2;
  X -= 1;
ROUT_END
"#;
        let r = parse_routine(src).unwrap();
        assert!(matches!(r.body[0], Stmt::Assign { .. }));
        assert!(matches!(r.body[1], Stmt::PtrBump { elems: 2, .. }));
        assert!(matches!(r.body[2], Stmt::PtrBump { elems: -1, .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let src = r#"
ROUTINE f(X, N);
PARAMS :: X = DOUBLE_PTR, N = INT;
SCALARS :: s = DOUBLE, a = DOUBLE, b = DOUBLE;
ROUT_BEGIN
  s = a + b * 2.0;
ROUT_END
"#;
        let r = parse_routine(src).unwrap();
        match &r.body[0] {
            Stmt::Assign {
                rhs: Expr::Bin(crate::ast::BinaryOp::Add, _, rhs),
                ..
            } => {
                assert!(matches!(**rhs, Expr::Bin(crate::ast::BinaryOp::Mul, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn bad_step_rejected() {
        let src = r#"
ROUTINE f(X, N);
PARAMS :: X = DOUBLE_PTR, N = INT;
ROUT_BEGIN
  LOOP i = 0, N, -2
  LOOP_BODY
  LOOP_END
ROUT_END
"#;
        assert!(parse_routine(src).is_err());
    }

    #[test]
    fn unknown_markup_rejected() {
        let src = "!! FROBNICATE\nROUTINE f(N);\nPARAMS :: N = INT;\nROUT_BEGIN\nROUT_END";
        assert!(parse_routine(src).is_err());
    }
}
