//! Lexer for the HIL.
//!
//! Comments: `#` to end of line. Mark-up: `!!` to end of line is captured
//! as a [`Tok::Markup`] token so the parser can attach it to the next
//! statement. Identifiers are case-sensitive; keywords are upper-case.

/// A token with its 1-based source line (for diagnostics).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    /// A `!! ...` mark-up line (content after `!!`, trimmed).
    Markup(String),
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    DoubleColon,
    // operators
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Gt,
    Ge,
    Lt,
    Le,
    EqEq,
    Ne,
    Eof,
}

/// Lexing failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}
impl std::error::Error for LexError {}

/// Tokenize a full source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    macro_rules! push {
        ($t:expr) => {
            out.push(Token { tok: $t, line })
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'!' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let text = src[start..j].trim().to_string();
                push!(Tok::Markup(text));
                i = j;
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                push!(Tok::Ne);
                i += 2;
            }
            b'(' => {
                push!(Tok::LParen);
                i += 1;
            }
            b')' => {
                push!(Tok::RParen);
                i += 1;
            }
            b'[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            b']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            b',' => {
                push!(Tok::Comma);
                i += 1;
            }
            b';' => {
                push!(Tok::Semi);
                i += 1;
            }
            b':' => {
                if i + 1 < b.len() && b[i + 1] == b':' {
                    push!(Tok::DoubleColon);
                    i += 2;
                } else {
                    push!(Tok::Colon);
                    i += 1;
                }
            }
            b'=' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(Tok::EqEq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            b'+' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(Tok::PlusAssign);
                    i += 2;
                } else {
                    push!(Tok::Plus);
                    i += 1;
                }
            }
            b'-' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(Tok::MinusAssign);
                    i += 2;
                } else {
                    push!(Tok::Minus);
                    i += 1;
                }
            }
            b'*' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(Tok::StarAssign);
                    i += 2;
                } else {
                    push!(Tok::Star);
                    i += 1;
                }
            }
            b'/' => {
                push!(Tok::Slash);
                i += 1;
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                // Exponent part (1e-3).
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let save = i;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    if i < b.len() && b[i].is_ascii_digit() {
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save;
                    }
                }
                let text = &src[start..i];
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        line,
                        msg: format!("bad float `{text}`"),
                    })?;
                    push!(Tok::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        line,
                        msg: format!("bad integer `{text}`"),
                    })?;
                    push!(Tok::Int(v));
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_string()));
            }
            _ => {
                return Err(LexError {
                    line,
                    msg: format!("unexpected character `{}`", c as char),
                })
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("a += b[0] * 2;"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::LBracket,
                Tok::Int(0),
                Tok::RBracket,
                Tok::Star,
                Tok::Int(2),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn floats_and_exponents() {
        assert_eq!(kinds("0.5"), vec![Tok::Float(0.5), Tok::Eof]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        assert_eq!(kinds("2.5e-2"), vec![Tok::Float(0.025), Tok::Eof]);
        assert_eq!(kinds("42"), vec![Tok::Int(42), Tok::Eof]);
    }

    #[test]
    fn markup_captured() {
        let toks = kinds("!! TUNE LOOP\nLOOP");
        assert_eq!(toks[0], Tok::Markup("TUNE LOOP".into()));
        assert_eq!(toks[1], Tok::Ident("LOOP".into()));
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("# a comment\nx"),
            vec![Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            kinds("> >= < <= == !="),
            vec![
                Tok::Gt,
                Tok::Ge,
                Tok::Lt,
                Tok::Le,
                Tok::EqEq,
                Tok::Ne,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn double_colon() {
        assert_eq!(kinds(":: :"), vec![Tok::DoubleColon, Tok::Colon, Tok::Eof]);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn bad_char_errors() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn negative_handled_as_minus_then_int() {
        assert_eq!(kinds("-1"), vec![Tok::Minus, Tok::Int(1), Tok::Eof]);
    }
}
