//! # ifko-hil — the kernel input language of FKO
//!
//! The paper describes FKO's input as a "high-level intermediate language"
//! (HIL): close to ANSI C in form, with usage rules closer to Fortran 77
//! (output-array aliasing disallowed unless annotated), plus user mark-up
//! that replaces front-end analysis — most importantly the flag that marks
//! the loop the iterative search should tune. This crate implements that
//! language: lexer ([`lex`]), AST ([`ast`]), recursive-descent parser
//! ([`parse`]), semantic analysis ([`sema`]) and a pretty-printer
//! ([`pretty`]).
//!
//! The concrete grammar follows the paper's Figure 6 examples:
//!
//! ```text
//! ROUTINE dot(X, Y, N);
//! PARAMS :: X = DOUBLE_PTR, Y = DOUBLE_PTR, N = INT;
//! SCALARS :: dot = DOUBLE:OUT, x = DOUBLE, y = DOUBLE;
//! ROUT_BEGIN
//!   dot = 0.0;
//!   !! TUNE LOOP
//!   LOOP i = 0, N
//!   LOOP_BODY
//!     x = X[0];
//!     y = Y[0];
//!     dot += x * y;
//!     X += 1;
//!     Y += 1;
//!   LOOP_END
//!   RETURN dot;
//! ROUT_END
//! ```
//!
//! Mark-up lines start with `!!` and attach to the next statement:
//! `!! TUNE LOOP` flags the loop for empirical tuning, `!! NOPREFETCH X`
//! excludes an array from prefetch candidacy (the paper's "arrays known to
//! be already in cache"), and `!! ALIAS X Y` permits the otherwise
//! forbidden aliasing of an output array.
//!
//! Loops may also count down (`LOOP i = N, 0, -1`), branches are
//! `IF (x > amax) GOTO NEWMAX;` with targets declared as `NEWMAX:` — see
//! the `amax` loop in the paper's Figure 6(b).

pub mod ast;
pub mod lex;
pub mod parse;
pub mod pretty;
pub mod sema;

pub use ast::{AssignOp, CmpOp, Expr, Intent, LValue, ParamType, Prec, Routine, Stmt, UnOp};
pub use parse::{parse_routine, ParseError};
pub use sema::{analyze, SemaError, SemaInfo};

/// Parse and semantically check a routine in one call.
pub fn compile_frontend(src: &str) -> Result<(ast::Routine, sema::SemaInfo), FrontendError> {
    let routine = parse::parse_routine(src).map_err(FrontendError::Parse)?;
    let info = sema::analyze(&routine).map_err(FrontendError::Sema)?;
    Ok((routine, info))
}

/// Either phase of front-end failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    Parse(parse::ParseError),
    Sema(sema::SemaError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Sema(e) => write!(f, "semantic error: {e}"),
        }
    }
}
impl std::error::Error for FrontendError {}
