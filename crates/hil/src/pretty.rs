//! Pretty-printer: renders an AST back to parseable HIL source. Used for
//! diagnostics and round-trip testing of the front end.

use crate::ast::*;
use std::fmt::Write;

/// Render a routine as HIL source.
pub fn print_routine(r: &Routine) -> String {
    let mut s = String::new();
    for a in &r.markup.no_prefetch {
        let _ = writeln!(s, "!! NOPREFETCH {a}");
    }
    for (a, b) in &r.markup.alias_ok {
        let _ = writeln!(s, "!! ALIAS {a} {b}");
    }
    let names: Vec<&str> = r.params.iter().map(|p| p.name.as_str()).collect();
    let _ = writeln!(s, "ROUTINE {}({});", r.name, names.join(", "));
    let decls: Vec<String> = r
        .params
        .iter()
        .map(|p| {
            let ty = match p.ty {
                ParamType::Int => "INT".to_string(),
                ParamType::Scalar(Prec::S) => "FLOAT".to_string(),
                ParamType::Scalar(Prec::D) => "DOUBLE".to_string(),
                ParamType::Ptr { prec, intent } => {
                    let base = match prec {
                        Prec::S => "FLOAT_PTR",
                        Prec::D => "DOUBLE_PTR",
                    };
                    match intent {
                        Intent::In => base.to_string(),
                        Intent::Out => format!("{base}:OUT"),
                        Intent::InOut => format!("{base}:INOUT"),
                    }
                }
            };
            format!("{} = {}", p.name, ty)
        })
        .collect();
    let _ = writeln!(s, "PARAMS :: {};", decls.join(", "));
    if !r.scalars.is_empty() {
        let decls: Vec<String> = r
            .scalars
            .iter()
            .map(|d| {
                let ty = match d.prec {
                    None => "INT",
                    Some(Prec::S) => "FLOAT",
                    Some(Prec::D) => "DOUBLE",
                };
                if d.out {
                    format!("{} = {}:OUT", d.name, ty)
                } else {
                    format!("{} = {}", d.name, ty)
                }
            })
            .collect();
        let _ = writeln!(s, "SCALARS :: {};", decls.join(", "));
    }
    let _ = writeln!(s, "ROUT_BEGIN");
    print_stmts(&mut s, &r.body, 1);
    let _ = writeln!(s, "ROUT_END");
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

fn print_stmts(s: &mut String, stmts: &[Stmt], level: usize) {
    for st in stmts {
        match st {
            Stmt::Assign { lhs, op, rhs } => {
                indent(s, level);
                let opstr = match op {
                    AssignOp::Set => "=",
                    AssignOp::Add => "+=",
                    AssignOp::Sub => "-=",
                    AssignOp::Mul => "*=",
                };
                let _ = writeln!(s, "{} {} {};", print_lvalue(lhs), opstr, print_expr(rhs));
            }
            Stmt::PtrBump { ptr, elems } => {
                indent(s, level);
                if *elems >= 0 {
                    let _ = writeln!(s, "{ptr} += {elems};");
                } else {
                    let _ = writeln!(s, "{ptr} -= {};", -elems);
                }
            }
            Stmt::Loop(l) => {
                if l.tuned {
                    indent(s, level);
                    let _ = writeln!(s, "!! TUNE LOOP");
                }
                indent(s, level);
                if l.down {
                    let _ = writeln!(
                        s,
                        "LOOP {} = {}, {}, -1",
                        l.var,
                        print_expr(&l.start),
                        print_expr(&l.end)
                    );
                } else {
                    let _ = writeln!(
                        s,
                        "LOOP {} = {}, {}",
                        l.var,
                        print_expr(&l.start),
                        print_expr(&l.end)
                    );
                }
                indent(s, level);
                let _ = writeln!(s, "LOOP_BODY");
                print_stmts(s, &l.body, level + 1);
                indent(s, level);
                let _ = writeln!(s, "LOOP_END");
            }
            Stmt::IfGoto {
                lhs,
                cmp,
                rhs,
                label,
            } => {
                indent(s, level);
                let c = match cmp {
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                };
                let _ = writeln!(
                    s,
                    "IF ({} {} {}) GOTO {};",
                    print_expr(lhs),
                    c,
                    print_expr(rhs),
                    label
                );
            }
            Stmt::Goto(l) => {
                indent(s, level);
                let _ = writeln!(s, "GOTO {l};");
            }
            Stmt::Label(l) => {
                let _ = writeln!(s, "{l}:");
            }
            Stmt::Return(e) => {
                indent(s, level);
                let _ = writeln!(s, "RETURN {};", print_expr(e));
            }
        }
    }
}

fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Scalar(n) => n.clone(),
        LValue::ArrayElem { ptr, offset } => format!("{ptr}[{offset}]"),
    }
}

/// Render an expression (fully parenthesized where needed).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::FConst(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::IConst(v) => format!("{v}"),
        Expr::Var(n) => n.clone(),
        Expr::Load { ptr, offset } => format!("{ptr}[{offset}]"),
        Expr::Unary(UnOp::Neg, inner) => format!("-{}", print_factor(inner)),
        Expr::Unary(UnOp::Abs, inner) => format!("ABS {}", print_factor(inner)),
        Expr::Unary(UnOp::Sqrt, inner) => format!("SQRT {}", print_factor(inner)),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
            };
            format!("{} {} {}", print_factor(a), o, print_factor(b))
        }
    }
}

fn print_factor(e: &Expr) -> String {
    match e {
        Expr::Bin(..) => format!("({})", print_expr(e)),
        _ => print_expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_routine;

    const DOT: &str = r#"
ROUTINE dot(X, Y, N);
PARAMS :: X = DOUBLE_PTR, Y = DOUBLE_PTR, N = INT;
SCALARS :: dot = DOUBLE:OUT, x = DOUBLE, y = DOUBLE;
ROUT_BEGIN
  dot = 0.0;
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
  LOOP_END
  RETURN dot;
ROUT_END
"#;

    #[test]
    fn round_trip_is_stable() {
        let r1 = parse_routine(DOT).unwrap();
        let printed = print_routine(&r1);
        let r2 = parse_routine(&printed).expect("printed source must re-parse");
        assert_eq!(r1, r2, "round trip must preserve the AST");
        // Second round trip must be a fixed point textually.
        assert_eq!(printed, print_routine(&r2));
    }

    #[test]
    fn prints_downward_loop_and_branch() {
        let src = r#"
ROUTINE amax(X, N);
PARAMS :: X = DOUBLE_PTR, N = INT;
SCALARS :: amax = DOUBLE, imax = INT:OUT, x = DOUBLE;
ROUT_BEGIN
  LOOP i = N, 0, -1
  LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax) GOTO NEWMAX;
  ENDOFLOOP:
    X += 1;
  LOOP_END
  RETURN imax;
NEWMAX:
  amax = x;
  imax = N - i;
  GOTO ENDOFLOOP;
ROUT_END
"#;
        let r1 = parse_routine(src).unwrap();
        let printed = print_routine(&r1);
        assert!(printed.contains(", -1"));
        assert!(printed.contains("IF (x > amax) GOTO NEWMAX;"));
        let r2 = parse_routine(&printed).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn expr_precedence_preserved() {
        let e = Expr::Bin(
            BinaryOp::Mul,
            Box::new(Expr::Bin(
                BinaryOp::Add,
                Box::new(Expr::Var("a".into())),
                Box::new(Expr::Var("b".into())),
            )),
            Box::new(Expr::Var("c".into())),
        );
        assert_eq!(print_expr(&e), "(a + b) * c");
    }
}
