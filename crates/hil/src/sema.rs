//! Semantic analysis: symbol resolution, type checking, Fortran-77-style
//! intent/aliasing rules, and label checking.

use crate::ast::*;
use std::collections::{HashMap, HashSet};

/// Kind of a resolved symbol.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SymKind {
    IntParam,
    FScalarParam(Prec),
    Ptr { prec: Prec, intent: Intent },
    IntScalar,
    FScalar(Prec),
    LoopVar,
}

/// Result of semantic analysis.
#[derive(Clone, Debug, Default)]
pub struct SemaInfo {
    /// Every declared symbol.
    pub symbols: HashMap<String, SymKindOwned>,
    /// The single floating-point precision used by the routine's data.
    pub prec: Option<Prec>,
    /// Name of the OUT scalar (routine result), if any.
    pub out_scalar: Option<String>,
    /// Whether a `!! TUNE LOOP` exists.
    pub has_tuned_loop: bool,
}

/// Owned variant of [`SymKind`] stored in the table.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SymKindOwned(pub SymKind);

/// Semantic failure.
#[derive(Clone, PartialEq, Debug)]
pub struct SemaError(pub String);

impl std::fmt::Display for SemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for SemaError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError(msg.into()))
}

/// Analyze a routine.
pub fn analyze(r: &Routine) -> Result<SemaInfo, SemaError> {
    let mut info = SemaInfo::default();
    let mut precs: HashSet<Prec> = HashSet::new();

    for p in &r.params {
        let kind = match p.ty {
            ParamType::Int => SymKind::IntParam,
            ParamType::Scalar(prec) => {
                precs.insert(prec);
                SymKind::FScalarParam(prec)
            }
            ParamType::Ptr { prec, intent } => {
                precs.insert(prec);
                SymKind::Ptr { prec, intent }
            }
        };
        if info
            .symbols
            .insert(p.name.clone(), SymKindOwned(kind))
            .is_some()
        {
            return err(format!("duplicate symbol `{}`", p.name));
        }
    }
    for s in &r.scalars {
        let kind = match s.prec {
            None => SymKind::IntScalar,
            Some(prec) => {
                precs.insert(prec);
                SymKind::FScalar(prec)
            }
        };
        if info
            .symbols
            .insert(s.name.clone(), SymKindOwned(kind))
            .is_some()
        {
            return err(format!("duplicate symbol `{}`", s.name));
        }
        if s.out {
            if info.out_scalar.is_some() {
                return err("multiple OUT scalars");
            }
            info.out_scalar = Some(s.name.clone());
        }
    }
    if precs.len() > 1 {
        return err("mixed single/double precision in one routine is not supported");
    }
    info.prec = precs.into_iter().next();

    // Collect labels (at any nesting level) and check uses; visit statements.
    let mut labels = HashSet::new();
    collect_labels(&r.body, &mut labels);
    let mut ctx = Ctx {
        info: &mut info,
        labels: &labels,
        routine: r,
        loop_vars: Vec::new(),
    };
    ctx.stmts(&r.body)?;
    info.has_tuned_loop = r.tuned_loop().is_some();

    // Mark-up references must name real arrays.
    for a in &r.markup.no_prefetch {
        match info.symbols.get(a) {
            Some(SymKindOwned(SymKind::Ptr { .. })) => {}
            _ => return err(format!("NOPREFETCH names unknown array `{a}`")),
        }
    }
    Ok(info)
}

fn collect_labels(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Label(l) => {
                out.insert(l.clone());
            }
            Stmt::Loop(l) => collect_labels(&l.body, out),
            _ => {}
        }
    }
}

struct Ctx<'a> {
    info: &'a mut SemaInfo,
    labels: &'a HashSet<String>,
    routine: &'a Routine,
    loop_vars: Vec<String>,
}

impl Ctx<'_> {
    fn kind(&self, name: &str) -> Option<SymKind> {
        if self.loop_vars.iter().any(|v| v == name) {
            return Some(SymKind::LoopVar);
        }
        self.info.symbols.get(name).map(|k| k.0)
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), SemaError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SemaError> {
        match s {
            Stmt::Assign { lhs, op: _, rhs } => {
                let lty = self.lvalue(lhs)?;
                let rty = self.expr(rhs)?;
                match (lty, rty) {
                    (Ty::Int, Ty::Int) => Ok(()),
                    (Ty::F(_), Ty::F(_)) | (Ty::F(_), Ty::Int) => Ok(()),
                    (Ty::Int, Ty::F(_)) => err("cannot assign floating value to integer location"),
                }
            }
            Stmt::PtrBump { ptr, elems: _ } => match self.kind(ptr) {
                Some(SymKind::Ptr { .. }) => Ok(()),
                _ => err(format!("`{ptr} += k` requires a pointer parameter")),
            },
            Stmt::Loop(l) => {
                match self.kind(&l.var) {
                    None => {}
                    Some(_) => {
                        return err(format!("loop variable `{}` shadows a declaration", l.var))
                    }
                }
                let st = self.expr(&l.start)?;
                let en = self.expr(&l.end)?;
                if st != Ty::Int || en != Ty::Int {
                    return err("loop bounds must be integers");
                }
                // The variable stays visible after the loop: out-of-line
                // cold blocks (e.g. the paper's NEWMAX block) read it.
                self.loop_vars.push(l.var.clone());
                self.stmts(&l.body)
            }
            Stmt::IfGoto {
                lhs,
                cmp: _,
                rhs,
                label,
            } => {
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                match (a, b) {
                    (Ty::Int, Ty::Int)
                    | (Ty::F(_), Ty::F(_))
                    | (Ty::F(_), Ty::Int)
                    | (Ty::Int, Ty::F(_)) => {}
                }
                if !self.labels.contains(label) {
                    return err(format!("GOTO to undefined label `{label}`"));
                }
                Ok(())
            }
            Stmt::Goto(label) => {
                if !self.labels.contains(label) {
                    return err(format!("GOTO to undefined label `{label}`"));
                }
                Ok(())
            }
            Stmt::Label(_) => Ok(()),
            Stmt::Return(e) => {
                self.expr(e)?;
                Ok(())
            }
        }
    }

    fn lvalue(&mut self, lv: &LValue) -> Result<Ty, SemaError> {
        match lv {
            LValue::Scalar(name) => match self.kind(name) {
                Some(SymKind::FScalar(p)) | Some(SymKind::FScalarParam(p)) => Ok(Ty::F(p)),
                Some(SymKind::IntScalar) => Ok(Ty::Int),
                Some(SymKind::LoopVar) => err(format!("cannot assign to loop variable `{name}`")),
                Some(SymKind::IntParam) => err(format!("cannot assign to INT parameter `{name}`")),
                Some(SymKind::Ptr { .. }) => err(format!(
                    "cannot assign to pointer `{name}` (use `{name} += k`)"
                )),
                None => err(format!("unknown symbol `{name}`")),
            },
            LValue::ArrayElem { ptr, offset: _ } => match self.kind(ptr) {
                Some(SymKind::Ptr { prec, intent }) => {
                    if intent == Intent::In {
                        return err(format!(
                            "store through IN pointer `{ptr}` (declare it :OUT or :INOUT)"
                        ));
                    }
                    Ok(Ty::F(prec))
                }
                _ => err(format!("`{ptr}[..]` requires a pointer parameter")),
            },
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<Ty, SemaError> {
        match e {
            Expr::FConst(_) => Ok(Ty::F(self.info.prec.unwrap_or(Prec::D))),
            Expr::IConst(_) => Ok(Ty::Int),
            Expr::Var(name) => match self.kind(name) {
                Some(SymKind::FScalar(p)) | Some(SymKind::FScalarParam(p)) => Ok(Ty::F(p)),
                Some(SymKind::IntScalar) | Some(SymKind::IntParam) | Some(SymKind::LoopVar) => {
                    Ok(Ty::Int)
                }
                Some(SymKind::Ptr { .. }) => {
                    err(format!("pointer `{name}` used as a value (subscript it)"))
                }
                None => err(format!("unknown symbol `{name}`")),
            },
            Expr::Load { ptr, offset: _ } => match self.kind(ptr) {
                Some(SymKind::Ptr { prec, .. }) => Ok(Ty::F(prec)),
                _ => err(format!("`{ptr}[..]` requires a pointer parameter")),
            },
            Expr::Unary(op, inner) => {
                let t = self.expr(inner)?;
                match (op, t) {
                    (UnOp::Abs, Ty::F(p)) => Ok(Ty::F(p)),
                    (UnOp::Abs, Ty::Int) => err("ABS of an integer is not supported"),
                    (UnOp::Sqrt, Ty::F(p)) => Ok(Ty::F(p)),
                    (UnOp::Sqrt, Ty::Int) => err("SQRT of an integer is not supported"),
                    (UnOp::Neg, t) => Ok(t),
                }
            }
            Expr::Bin(_, a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                match (ta, tb) {
                    (Ty::Int, Ty::Int) => Ok(Ty::Int),
                    (Ty::F(p), _) | (_, Ty::F(p)) => Ok(Ty::F(p)),
                }
            }
        }
    }
}

/// Internal type lattice.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Ty {
    Int,
    F(Prec),
}

// Unused import guard: Routine is used via Ctx.
impl Ctx<'_> {
    #[allow(dead_code)]
    fn routine_name(&self) -> &str {
        &self.routine.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_routine;

    fn check(src: &str) -> Result<SemaInfo, SemaError> {
        analyze(&parse_routine(src).unwrap())
    }

    const OK_DOT: &str = r#"
ROUTINE dot(X, Y, N);
PARAMS :: X = DOUBLE_PTR, Y = DOUBLE_PTR, N = INT;
SCALARS :: dot = DOUBLE:OUT, x = DOUBLE, y = DOUBLE;
ROUT_BEGIN
  dot = 0.0;
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
  LOOP_END
  RETURN dot;
ROUT_END
"#;

    #[test]
    fn dot_passes_and_reports() {
        let info = check(OK_DOT).unwrap();
        assert_eq!(info.prec, Some(Prec::D));
        assert_eq!(info.out_scalar.as_deref(), Some("dot"));
        assert!(info.has_tuned_loop);
    }

    #[test]
    fn store_through_in_pointer_rejected() {
        let src = r#"
ROUTINE f(X, N);
PARAMS :: X = DOUBLE_PTR, N = INT;
SCALARS :: t = DOUBLE;
ROUT_BEGIN
  X[0] = 1.0;
ROUT_END
"#;
        let e = check(src).unwrap_err();
        assert!(e.0.contains("IN pointer"), "{e}");
    }

    #[test]
    fn store_through_out_pointer_ok() {
        let src = r#"
ROUTINE f(X, N);
PARAMS :: X = DOUBLE_PTR:OUT, N = INT;
ROUT_BEGIN
  X[0] = 1.0;
ROUT_END
"#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn mixed_precision_rejected() {
        let src = r#"
ROUTINE f(X, Y, N);
PARAMS :: X = DOUBLE_PTR, Y = FLOAT_PTR, N = INT;
ROUT_BEGIN
ROUT_END
"#;
        assert!(check(src).is_err());
    }

    #[test]
    fn unknown_symbol_rejected() {
        let src = r#"
ROUTINE f(N);
PARAMS :: N = INT;
SCALARS :: s = DOUBLE;
ROUT_BEGIN
  s = zz;
ROUT_END
"#;
        assert!(check(src).unwrap_err().0.contains("unknown symbol"));
    }

    #[test]
    fn undefined_label_rejected() {
        let src = r#"
ROUTINE f(N);
PARAMS :: N = INT;
ROUT_BEGIN
  GOTO nowhere;
ROUT_END
"#;
        assert!(check(src).unwrap_err().0.contains("undefined label"));
    }

    #[test]
    fn loop_var_assignment_rejected() {
        let src = r#"
ROUTINE f(N);
PARAMS :: N = INT;
SCALARS :: s = INT;
ROUT_BEGIN
  LOOP i = 0, N
  LOOP_BODY
    i = 3;
  LOOP_END
ROUT_END
"#;
        assert!(check(src).unwrap_err().0.contains("loop variable"));
    }

    #[test]
    fn loop_var_readable_as_int() {
        let src = r#"
ROUTINE f(N);
PARAMS :: N = INT;
SCALARS :: s = INT;
ROUT_BEGIN
  LOOP i = 0, N
  LOOP_BODY
    s = N - i;
  LOOP_END
ROUT_END
"#;
        assert!(check(src).is_ok());
    }

    #[test]
    fn float_to_int_assignment_rejected() {
        let src = r#"
ROUTINE f(N);
PARAMS :: N = INT;
SCALARS :: s = INT, x = DOUBLE;
ROUT_BEGIN
  s = x;
ROUT_END
"#;
        assert!(check(src).is_err());
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let src = r#"
ROUTINE f(N);
PARAMS :: N = INT;
SCALARS :: N = DOUBLE;
ROUT_BEGIN
ROUT_END
"#;
        assert!(check(src).unwrap_err().0.contains("duplicate"));
    }

    #[test]
    fn noprefetch_must_name_array() {
        let src = r#"
!! NOPREFETCH Q
ROUTINE f(X, N);
PARAMS :: X = DOUBLE_PTR, N = INT;
ROUT_BEGIN
ROUT_END
"#;
        assert!(check(src).unwrap_err().0.contains("NOPREFETCH"));
    }

    #[test]
    fn multiple_out_scalars_rejected() {
        let src = r#"
ROUTINE f(N);
PARAMS :: N = INT;
SCALARS :: a = DOUBLE:OUT, b = DOUBLE:OUT;
ROUT_BEGIN
ROUT_END
"#;
        assert!(check(src).unwrap_err().0.contains("multiple OUT"));
    }
}
