//! Abstract syntax tree of the HIL.

/// Floating-point precision. Mirrors `ifko_xsim::Prec` but kept separate so
//  the front end has no simulator dependency.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Prec {
    S,
    D,
}

impl Prec {
    pub fn bytes(self) -> u64 {
        match self {
            Prec::S => 4,
            Prec::D => 8,
        }
    }
    pub fn blas_char(self) -> char {
        match self {
            Prec::S => 's',
            Prec::D => 'd',
        }
    }
}

/// How a pointer parameter is used; writing through an `In` pointer is a
/// semantic error (Fortran-77-style rules, per the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Intent {
    In,
    Out,
    InOut,
}

/// Declared type of a routine parameter.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ParamType {
    /// Integer (vector length, stride, ...).
    Int,
    /// Floating-point scalar (e.g. `alpha`).
    Scalar(Prec),
    /// Pointer to a dense vector of the given precision.
    Ptr { prec: Prec, intent: Intent },
}

/// 1-based source line of a declaration or statement, carried for
/// diagnostics only. Equality is always true so that pretty-print →
/// re-parse round trips (which cannot preserve exact line numbers)
/// still compare equal at the AST level.
#[derive(Clone, Copy, Debug, Default)]
pub struct Line(pub u32);

impl PartialEq for Line {
    fn eq(&self, _other: &Line) -> bool {
        true
    }
}
impl Eq for Line {}

/// A routine parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct Param {
    pub name: String,
    pub ty: ParamType,
    /// Source line of the declaration (0 = unknown).
    pub line: Line,
}

/// A declared local scalar. An `out: true` scalar carries the routine's
/// result (like `dot` or `imax`).
#[derive(Clone, PartialEq, Debug)]
pub struct ScalarDecl {
    pub name: String,
    /// `None` = integer scalar, `Some(p)` = floating-point of precision `p`.
    pub prec: Option<Prec>,
    pub out: bool,
    /// Source line of the declaration (0 = unknown).
    pub line: Line,
}

/// Assignment operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    Neg,
    /// `ABS x` (the paper's amax loop).
    Abs,
    /// `SQRT x` (nrm2-style kernels).
    Sqrt,
}

/// Binary arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison operators for `IF (..) GOTO`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Gt,
    Ge,
    Lt,
    Le,
    Eq,
    Ne,
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Floating constant (`0.0`).
    FConst(f64),
    /// Integer constant.
    IConst(i64),
    /// Scalar variable or parameter by name.
    Var(String),
    /// Array element load `X[k]` (constant element offset from the moving
    /// pointer — the HIL idiom; pointers advance with `X += 1`).
    Load {
        ptr: String,
        offset: i64,
    },
    Unary(UnOp, Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Assignable locations.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    Scalar(String),
    ArrayElem { ptr: String, offset: i64 },
}

/// Statements.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `lhs op rhs;`
    Assign {
        lhs: LValue,
        op: AssignOp,
        rhs: Expr,
    },
    /// `X += k;` — advance a pointer by `k` elements.
    PtrBump { ptr: String, elems: i64 },
    /// `LOOP var = start, end [, -1] ... LOOP_END`.
    Loop(Loop),
    /// `IF (a cmp b) GOTO label;`
    IfGoto {
        lhs: Expr,
        cmp: CmpOp,
        rhs: Expr,
        label: String,
    },
    /// `GOTO label;`
    Goto(String),
    /// `label:`
    Label(String),
    /// `RETURN expr;`
    Return(Expr),
}

/// A counted loop. `down: false` means `var = start .. end` stepping +1;
/// `down: true` means `var = start .. end` stepping -1 (the paper's
/// `LOOP i = N, 0, -1`).
#[derive(Clone, PartialEq, Debug)]
pub struct Loop {
    pub var: String,
    pub start: Expr,
    pub end: Expr,
    pub down: bool,
    pub body: Vec<Stmt>,
    /// Set by `!! TUNE LOOP` mark-up: this is the loop the empirical
    /// search tunes.
    pub tuned: bool,
    /// Source line of the `LOOP` header (0 = unknown).
    pub line: Line,
}

/// Mark-up collected at routine level.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Markup {
    /// Arrays the user excluded from prefetching (`!! NOPREFETCH X`).
    pub no_prefetch: Vec<String>,
    /// Pairs of arrays allowed to alias (`!! ALIAS X Y`).
    pub alias_ok: Vec<(String, String)>,
}

/// A full routine.
#[derive(Clone, PartialEq, Debug)]
pub struct Routine {
    pub name: String,
    pub params: Vec<Param>,
    pub scalars: Vec<ScalarDecl>,
    pub body: Vec<Stmt>,
    pub markup: Markup,
}

impl Routine {
    /// Find a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }
    /// Find a scalar declaration by name.
    pub fn scalar(&self, name: &str) -> Option<&ScalarDecl> {
        self.scalars.iter().find(|s| s.name == name)
    }
    /// Names of all pointer parameters, in declaration order.
    pub fn pointer_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| matches!(p.ty, ParamType::Ptr { .. }))
            .map(|p| p.name.as_str())
            .collect()
    }
    /// The tuned loop, if one is marked (searched recursively).
    pub fn tuned_loop(&self) -> Option<&Loop> {
        fn find(stmts: &[Stmt]) -> Option<&Loop> {
            for s in stmts {
                if let Stmt::Loop(l) = s {
                    if l.tuned {
                        return Some(l);
                    }
                    if let Some(inner) = find(&l.body) {
                        return Some(inner);
                    }
                }
            }
            None
        }
        find(&self.body)
    }
}

pub use BinOp as BinaryOp;

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_routine() -> Routine {
        Routine {
            name: "t".into(),
            params: vec![
                Param {
                    name: "X".into(),
                    ty: ParamType::Ptr {
                        prec: Prec::D,
                        intent: Intent::In,
                    },
                    line: Line::default(),
                },
                Param {
                    name: "N".into(),
                    ty: ParamType::Int,
                    line: Line::default(),
                },
            ],
            scalars: vec![ScalarDecl {
                name: "s".into(),
                prec: Some(Prec::D),
                out: true,
                line: Line::default(),
            }],
            body: vec![Stmt::Loop(Loop {
                var: "i".into(),
                start: Expr::IConst(0),
                end: Expr::Var("N".into()),
                down: false,
                body: vec![],
                tuned: true,
                line: Line::default(),
            })],
            markup: Markup::default(),
        }
    }

    #[test]
    fn lookup_helpers() {
        let r = mini_routine();
        assert!(r.param("X").is_some());
        assert!(r.param("Z").is_none());
        assert!(r.scalar("s").unwrap().out);
        assert_eq!(r.pointer_params(), vec!["X"]);
    }

    #[test]
    fn tuned_loop_found() {
        let r = mini_routine();
        assert!(r.tuned_loop().is_some());
        let mut r2 = r;
        if let Stmt::Loop(l) = &mut r2.body[0] {
            l.tuned = false;
        }
        assert!(r2.tuned_loop().is_none());
    }

    #[test]
    fn prec_bytes() {
        assert_eq!(Prec::S.bytes(), 4);
        assert_eq!(Prec::D.bytes(), 8);
    }
}
