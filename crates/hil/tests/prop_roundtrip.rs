//! Property-based front-end tests: generated routines survive a
//! pretty-print → re-parse round trip, and the lexer never panics.

use ifko_hil::ast::*;
use ifko_hil::{parse_routine, pretty};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid the fixed names used elsewhere in the generated routine
    // (pointers, N, and the loop variable `i`).
    "[a-z][a-z0-9_]{0,6}".prop_filter("reserved", |s| {
        !matches!(s.as_str(), "i" | "px" | "py" | "nn" | "gen")
    })
}

fn fexpr(vars: Vec<String>, ptrs: Vec<String>) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(|v| Expr::FConst(v as f64 * 0.5)),
        prop::sample::select(vars).prop_map(Expr::Var),
        (prop::sample::select(ptrs), 0i64..4).prop_map(|(p, off)| Expr::Load {
            ptr: p,
            offset: off
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinaryOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinaryOp::Mul,
                Box::new(a),
                Box::new(b)
            )),
            inner.prop_map(|a| Expr::Unary(UnOp::Abs, Box::new(a))),
        ]
    })
}

/// Generate a well-formed routine: two pointers, N, some FP scalars, and
/// a tuned loop whose body assigns scalars from loads and stores back.
fn routine() -> impl Strategy<Value = Routine> {
    let scalars = prop::collection::hash_set(ident(), 2..5);
    scalars.prop_flat_map(|scal_set| {
        let scal_names: Vec<String> = {
            let mut v: Vec<String> = scal_set.into_iter().collect();
            v.sort();
            v
        };
        let ptr_names = vec!["px".to_string(), "py".to_string()];
        let n_stmts = prop::collection::vec(
            (
                prop::sample::select(scal_names.clone()),
                fexpr(scal_names.clone(), ptr_names.clone()),
                prop_oneof![
                    Just(AssignOp::Set),
                    Just(AssignOp::Add),
                    Just(AssignOp::Mul)
                ],
            ),
            1..6,
        );
        let scal_names2 = scal_names.clone();
        n_stmts.prop_map(move |stmts| {
            let mut body: Vec<Stmt> = stmts
                .into_iter()
                .map(|(lhs, rhs, op)| Stmt::Assign {
                    lhs: LValue::Scalar(lhs),
                    op,
                    rhs,
                })
                .collect();
            // Store something through the OUT pointer, then bump both.
            body.push(Stmt::Assign {
                lhs: LValue::ArrayElem {
                    ptr: "py".into(),
                    offset: 0,
                },
                op: AssignOp::Set,
                rhs: Expr::Var(scal_names2[0].clone()),
            });
            body.push(Stmt::PtrBump {
                ptr: "px".into(),
                elems: 1,
            });
            body.push(Stmt::PtrBump {
                ptr: "py".into(),
                elems: 1,
            });
            Routine {
                name: "gen".into(),
                params: vec![
                    Param {
                        name: "px".into(),
                        ty: ParamType::Ptr {
                            prec: Prec::D,
                            intent: Intent::In,
                        },
                        line: Line::default(),
                    },
                    Param {
                        name: "py".into(),
                        ty: ParamType::Ptr {
                            prec: Prec::D,
                            intent: Intent::Out,
                        },
                        line: Line::default(),
                    },
                    Param {
                        name: "nn".into(),
                        ty: ParamType::Int,
                        line: Line::default(),
                    },
                ],
                scalars: scal_names2
                    .iter()
                    .map(|s| ScalarDecl {
                        name: s.clone(),
                        prec: Some(Prec::D),
                        out: false,
                        line: Line::default(),
                    })
                    .collect(),
                body: vec![Stmt::Loop(Loop {
                    var: "i".into(),
                    start: Expr::IConst(0),
                    end: Expr::Var("nn".into()),
                    down: false,
                    body,
                    tuned: true,
                    line: Line::default(),
                })],
                markup: Markup::default(),
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print(parse(print(r))) is a fixed point and preserves the AST.
    #[test]
    fn pretty_parse_roundtrip(r in routine()) {
        let printed = pretty::print_routine(&r);
        let reparsed = parse_routine(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(&r, &reparsed);
        let printed2 = pretty::print_routine(&reparsed);
        prop_assert_eq!(printed, printed2);
    }

    /// Generated routines pass semantic analysis.
    #[test]
    fn generated_routines_analyze(r in routine()) {
        let info = ifko_hil::analyze(&r).unwrap();
        prop_assert_eq!(info.prec, Some(Prec::D));
        prop_assert!(info.has_tuned_loop);
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(s in ".*") {
        let _ = ifko_hil::lex::lex(&s);
    }

    /// The parser never panics on arbitrary token-ish input.
    #[test]
    fn parser_total(s in "[A-Za-z0-9 =+*;:,()\\[\\]\n<>!-]{0,200}") {
        let _ = parse_routine(&s);
    }
}
