//! Blocking client for the `ifkod` socket protocol — the library behind
//! `ifko tune --remote`, `ifko daemon <cmd>`, and the e2e tests.

use crate::proto::{esc, read_frame, write_frame};
use ifko::report::{parse_json, Json};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One connection to a running daemon.
pub struct Client {
    stream: UnixStream,
}

/// A tune request under construction (all optional fields have daemon
/// defaults).
#[derive(Clone, Debug, Default)]
pub struct TuneRequest {
    /// BLAS-suite kernel name (e.g. `ddot`). Mutually exclusive with `src`.
    pub kernel: Option<String>,
    /// HIL kernel source for a generic tune.
    pub src: Option<String>,
    pub machine: String,
    pub context: String,
    pub n: Option<usize>,
    pub seed: Option<u64>,
    pub full: bool,
    pub strategy: Option<String>,
    pub budget: Option<String>,
}

impl TuneRequest {
    fn to_json(&self) -> String {
        let mut s = String::from("{\"cmd\":\"tune\"");
        if let Some(k) = &self.kernel {
            s.push_str(&format!(",\"kernel\":\"{}\"", esc(k)));
        }
        if let Some(src) = &self.src {
            s.push_str(&format!(",\"src\":\"{}\"", esc(src)));
        }
        if !self.machine.is_empty() {
            s.push_str(&format!(",\"machine\":\"{}\"", esc(&self.machine)));
        }
        if !self.context.is_empty() {
            s.push_str(&format!(",\"context\":\"{}\"", esc(&self.context)));
        }
        if let Some(n) = self.n {
            s.push_str(&format!(",\"n\":{n}"));
        }
        if let Some(seed) = self.seed {
            s.push_str(&format!(",\"seed\":{seed}"));
        }
        if self.full {
            s.push_str(",\"full\":true");
        }
        if let Some(st) = &self.strategy {
            s.push_str(&format!(",\"strategy\":\"{}\"", esc(st)));
        }
        if let Some(b) = &self.budget {
            s.push_str(&format!(",\"budget\":\"{}\"", esc(b)));
        }
        s.push('}');
        s
    }
}

impl Client {
    /// Connect to a daemon socket.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(socket)?,
        })
    }

    /// Send one raw JSON request and return the parsed response.
    /// Protocol-level failures (`"ok":false`) become `Err` with the
    /// daemon's error message.
    pub fn request(&mut self, payload: &str) -> Result<Json, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send: {e}"))?;
        let reply = read_frame(&mut self.stream)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("daemon closed the connection")?;
        let v = parse_json(&reply).ok_or_else(|| format!("unparseable response: {reply}"))?;
        if v.get("ok").and_then(|j| j.as_bool()) == Some(true) {
            Ok(v)
        } else {
            Err(v
                .get("error")
                .and_then(|j| j.as_str())
                .unwrap_or("daemon error")
                .to_string())
        }
    }

    pub fn ping(&mut self) -> Result<(), String> {
        self.request("{\"cmd\":\"ping\"}").map(|_| ())
    }

    pub fn shutdown(&mut self) -> Result<(), String> {
        self.request("{\"cmd\":\"shutdown\"}").map(|_| ())
    }

    /// Prometheus text of the daemon's metrics registry.
    pub fn metrics(&mut self) -> Result<String, String> {
        let v = self.request("{\"cmd\":\"metrics\"}")?;
        Ok(v.get("text")
            .and_then(|j| j.as_str())
            .unwrap_or_default()
            .to_string())
    }

    /// Database statistics (JSON object under `stats`).
    pub fn stats(&mut self) -> Result<Json, String> {
        let v = self.request("{\"cmd\":\"stats\"}")?;
        v.get("stats").cloned().ok_or("missing stats".to_string())
    }

    /// Compact every shard now; returns post-compaction statistics.
    pub fn compact(&mut self) -> Result<Json, String> {
        let v = self.request("{\"cmd\":\"compact\"}")?;
        v.get("stats").cloned().ok_or("missing stats".to_string())
    }

    /// Pack the daemon's database into artifact text.
    pub fn pack(&mut self) -> Result<String, String> {
        let v = self.request("{\"cmd\":\"pack\"}")?;
        Ok(v.get("artifact")
            .and_then(|j| j.as_str())
            .unwrap_or_default()
            .to_string())
    }

    /// Exact-key (optionally nearest-`sfv`) warm-start lookup. Returns
    /// the full response object (`found`, `nearest`, `record`). `prec`
    /// is required for kernels outside the built-in suite; for suite
    /// kernels the daemon derives it from the kernel table.
    pub fn query(
        &mut self,
        kernel: &str,
        machine: &str,
        context: &str,
        prec: Option<&str>,
        sfv: Option<&[f64]>,
    ) -> Result<Json, String> {
        let mut s = format!(
            "{{\"cmd\":\"query\",\"kernel\":\"{}\",\"machine\":\"{}\",\"context\":\"{}\"",
            esc(kernel),
            esc(machine),
            esc(context)
        );
        if let Some(p) = prec {
            s.push_str(&format!(",\"prec\":\"{}\"", esc(p)));
        }
        if let Some(sfv) = sfv {
            let vals: Vec<String> = sfv.iter().map(|v| format!("{v:.6}")).collect();
            s.push_str(&format!(",\"sfv\":[{}]", vals.join(",")));
        }
        s.push('}');
        self.request(&s)
    }

    /// Run (or coalesce into) a tune session; returns the full response
    /// object.
    pub fn tune(&mut self, req: &TuneRequest) -> Result<Json, String> {
        self.request(&req.to_json())
    }
}
