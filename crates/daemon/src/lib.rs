//! `ifkod` — the long-running tuning daemon (tuning-as-a-service).
//!
//! A batch tuner pays full search cost on every invocation and forgets
//! everything at exit. The daemon keeps the expensive state resident —
//! the sharded [`TunedDb`](ifko::strategy::TunedDb) index and the
//! cross-phase [`EvalCache`](ifko::EvalCache) — and serves tune / query
//! / pack requests over a local Unix socket, so a warm-start lookup
//! answers at in-memory-index latency and a repeat tune short-circuits
//! on its verified stored winner.
//!
//! * [`proto`] — the wire protocol: length-prefixed JSON frames
//!   (4-byte big-endian length + UTF-8 payload), zero-dep on both ends.
//! * [`server`] — [`Daemon`](server::Daemon): the accept loop, one
//!   handler thread per connection, single-flight coalescing of
//!   identical concurrent tune requests, and `ifkod_*` metrics on the
//!   global registry (scrapable via the `metrics` request).
//! * [`client`] — [`Client`](client::Client): a thin blocking client
//!   used by `ifko tune --remote`, `ifko daemon <cmd>`, and the tests.
//!
//! Determinism contract: the daemon extends the engine's bit-identity
//! guarantee to the socket boundary. N concurrent clients tuning the
//! same kernel/machine/context converge to the bit-identical winner of
//! a serial run: identical requests coalesce (single-flight) so one
//! session computes while the rest wait, then re-verify the stored
//! winner through the normal warm-start path.

pub mod client;
pub mod server;

/// The wire protocol lives in the core crate (shared with the worker
/// pool); re-exported here so `ifko_daemon::proto::*` paths keep
/// working.
pub use ifko::proto;

pub use client::Client;
pub use proto::{read_frame, write_frame, MAX_FRAME};
pub use server::{Daemon, DaemonConfig, DaemonHandle};
