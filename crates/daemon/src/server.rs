//! The daemon proper: socket accept loop, per-connection handlers, and
//! request dispatch over the shared [`TunedDb`] index and
//! [`EvalCache`].
//!
//! Concurrency model: one OS thread per connection (connections are few
//! and long-lived; candidate evaluation inside a tune session does its
//! own `--jobs` parallelism). Identical concurrent tune requests
//! coalesce through a single-flight table — the first computes while
//! duplicates wait, then re-verify the freshly stored winner through
//! the normal warm-start path — which is what extends the engine's
//! bit-identity guarantee to the socket boundary. Every lookup the
//! daemon answers comes from the in-memory index; disk is touched only
//! to append or compact.

use crate::proto::{error_response, object, ok_response, write_frame, Field};
use ifko::artifact;
use ifko::eval::{fnv64, machine_fingerprint, EvalCache};
use ifko::metrics;
use ifko::report::{parse_json, Json};
use ifko::runner::Context;
use ifko::strategy::db::{params_json, record_json};
use ifko::strategy::{db_key, Budget, StrategySpec, TunedDb, STRATEGY_WARM};
use ifko::{SearchOptions, TuneConfig};
use ifko_blas::ops::EXTENDED_KERNELS;
use ifko_blas::{Kernel, ALL_KERNELS};
use ifko_xsim::{opteron, p4e, MachineConfig};
use std::collections::HashSet;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Unix socket path to listen on (created at start, removed at stop).
    pub socket: PathBuf,
    /// Tuned-results database directory (shared across all sessions).
    pub db_dir: PathBuf,
    /// Evaluation-cache directory; `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// `--jobs` width for each tune session's eval engine.
    pub jobs: usize,
    /// Suppress per-request logging.
    pub quiet: bool,
}

impl DaemonConfig {
    pub fn new(socket: impl Into<PathBuf>, db_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            db_dir: db_dir.into(),
            cache_dir: None,
            jobs: 1,
            quiet: false,
        }
    }
}

/// Shared server state.
struct Server {
    cfg: DaemonConfig,
    db: Arc<TunedDb>,
    cache: Arc<EvalCache>,
    stop: AtomicBool,
    /// Single-flight table: fingerprints of tune requests in progress.
    inflight: Mutex<HashSet<u64>>,
    inflight_cv: Condvar,
}

/// A running daemon: join or stop it through this handle.
pub struct Daemon;

pub struct DaemonHandle {
    server: Arc<Server>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Bind the socket, load the database and cache, and start serving
    /// in background threads. A stale socket file from a crashed daemon
    /// is replaced.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<DaemonHandle> {
        let db = Arc::new(TunedDb::open(&cfg.db_dir)?);
        let cache = match &cfg.cache_dir {
            Some(dir) => Arc::new(EvalCache::persistent(dir)?),
            None => Arc::new(EvalCache::new()),
        };
        if cfg.socket.exists() {
            std::fs::remove_file(&cfg.socket)?;
        }
        if let Some(parent) = cfg.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let listener = UnixListener::bind(&cfg.socket)?;
        listener.set_nonblocking(true)?;
        if !cfg.quiet {
            eprintln!(
                "ifkod: listening on {} (db {}, {} records, jobs {})",
                cfg.socket.display(),
                cfg.db_dir.display(),
                db.len(),
                cfg.jobs
            );
        }
        let server = Arc::new(Server {
            cfg,
            db,
            cache,
            stop: AtomicBool::new(false),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
        });
        let accept_server = Arc::clone(&server);
        let accept_thread = std::thread::spawn(move || accept_loop(accept_server, listener));
        Ok(DaemonHandle {
            server,
            accept_thread: Some(accept_thread),
        })
    }
}

impl DaemonHandle {
    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.server.cfg.socket
    }

    /// Block until the daemon stops (a client sent `shutdown`).
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stop the daemon and wait for every handler to finish.
    pub fn stop(mut self) {
        self.server.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.server.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(server: Arc<Server>, listener: UnixListener) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !server.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                metrics::global().counter(metrics::DAEMON_CONNECTIONS).inc();
                let s = Arc::clone(&server);
                handlers.retain(|h| !h.is_finished());
                handlers.push(std::thread::spawn(move || handle_connection(s, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(&server.cfg.socket);
    server.db.join_compactions();
    if !server.cfg.quiet {
        eprintln!("ifkod: stopped");
    }
}

fn handle_connection(server: Arc<Server>, stream: UnixStream) {
    // A short read timeout turns a blocking read into an idle tick, so
    // a connection parked between requests still notices shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut stream = stream;
    loop {
        match read_frame_idle(&mut stream, &server.stop) {
            Ok(Some(payload)) => {
                let response = dispatch(&server, &payload);
                if write_frame(&mut stream, &response).is_err() {
                    break;
                }
            }
            Ok(None) => break, // clean EOF or shutdown
            Err(_) => {
                // Torn frame — a client died mid-request. Drop the
                // connection; the daemon itself is unaffected.
                metrics::global().counter(metrics::DAEMON_ERRORS).inc();
                break;
            }
        }
    }
}

/// [`read_frame`] for the server side: read timeouts are idle ticks
/// (partial progress is kept, so a timeout can never desync the
/// framing), and a shutdown observed between frames reads as EOF.
fn read_frame_idle(stream: &mut UnixStream, stop: &AtomicBool) -> std::io::Result<Option<String>> {
    use std::io::Read;
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-length",
                ))
            }
            Ok(k) => filled += k,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > crate::proto::MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    let mut got = 0;
    while got < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(k) => got += k,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn dispatch(server: &Arc<Server>, payload: &str) -> String {
    let Some(req) = parse_json(payload) else {
        metrics::global().counter(metrics::DAEMON_ERRORS).inc();
        return error_response("unparseable request");
    };
    let cmd = req.get("cmd").and_then(|j| j.as_str()).unwrap_or("");
    metrics::global()
        .counter(&metrics::labeled(metrics::DAEMON_REQUESTS, "kind", cmd))
        .inc();
    if !server.cfg.quiet && cmd != "ping" {
        eprintln!("ifkod: {cmd} request");
    }
    let result = match cmd {
        "ping" => Ok(object(&[Field::Str("pong", "ifkod")])),
        "shutdown" => {
            server.stop.store(true, Ordering::SeqCst);
            Ok(ok_response())
        }
        "metrics" => Ok(object(&[Field::Str(
            "text",
            &metrics::global().prometheus_text(),
        )])),
        "stats" => Ok(object(&[Field::Raw("stats", server.db.stats().to_json())])),
        "compact" => Ok(object(&[Field::Raw(
            "stats",
            server.db.compact().to_json(),
        )])),
        "pack" => Ok(object(&[Field::Str(
            "artifact",
            &artifact::pack(&server.db),
        )])),
        "query" => handle_query(server, &req),
        "tune" => handle_tune(server, &req),
        other => Err(format!("unknown cmd {other:?}")),
    };
    result.unwrap_or_else(|e| {
        metrics::global().counter(metrics::DAEMON_ERRORS).inc();
        error_response(&e)
    })
}

fn parse_machine(name: &str) -> Option<MachineConfig> {
    match name {
        "p4e" => Some(p4e()),
        "opteron" | "opt" => Some(opteron()),
        _ => None,
    }
}

fn find_kernel(name: &str) -> Option<Kernel> {
    ALL_KERNELS
        .iter()
        .chain(EXTENDED_KERNELS.iter())
        .find(|k| k.name() == name)
        .copied()
}

fn parse_context(label: &str) -> Result<Context, String> {
    match label {
        "oc" | "" => Ok(Context::OutOfCache),
        "ic" => Ok(Context::InL2),
        other => Err(format!("unknown context {other:?} (oc | ic)")),
    }
}

/// Exact-key (and optionally nearest-`sfv`) warm-start lookup, answered
/// entirely from the in-memory index.
fn handle_query(server: &Arc<Server>, req: &Json) -> Result<String, String> {
    let kernel = req
        .get("kernel")
        .and_then(|j| j.as_str())
        .ok_or("query needs a kernel name")?;
    let machine_name = req
        .get("machine")
        .and_then(|j| j.as_str())
        .ok_or("query needs a machine")?;
    let context = parse_context(req.get("context").and_then(|j| j.as_str()).unwrap_or("oc"))?;
    // The machine field accepts a model name (p4e/opteron) or a raw
    // fingerprint from a foreign build.
    let fingerprint = if machine_name.contains('#') {
        machine_name.to_string()
    } else {
        machine_fingerprint(
            &parse_machine(machine_name)
                .ok_or_else(|| format!("unknown machine {machine_name:?}"))?,
        )
    };
    let prec = match req.get("prec").and_then(|j| j.as_str()) {
        Some(p) => p.to_string(),
        None => {
            let k = find_kernel(kernel)
                .ok_or_else(|| format!("unknown kernel {kernel:?} (pass prec explicitly)"))?;
            format!("{:?}", k.prec)
        }
    };
    let key = db_key(
        kernel,
        &prec,
        &fingerprint,
        context.label(),
        server.db.rev(),
    );
    if let Some(rec) = server.db.lookup(&key) {
        return Ok(object(&[
            Field::Bool("found", true),
            Field::Bool("nearest", false),
            Field::Raw("record", record_json(&rec)),
        ]));
    }
    // Exact miss: nearest-by-static-features transfer lookup when the
    // caller supplied a feature vector.
    if let Some(Json::Arr(items)) = req.get("sfv") {
        let sfv: Option<Vec<f64>> = items
            .iter()
            .map(|x| match x {
                Json::Num(n) => Some(*n),
                _ => None,
            })
            .collect();
        if let Some(sfv) = sfv {
            if let Some(rec) = server.db.nearest_by_features(&sfv, &key) {
                return Ok(object(&[
                    Field::Bool("found", true),
                    Field::Bool("nearest", true),
                    Field::Raw("record", record_json(&rec)),
                ]));
            }
        }
    }
    Ok(object(&[Field::Bool("found", false)]))
}

/// Run one tune session over the shared database and cache.
fn handle_tune(server: &Arc<Server>, req: &Json) -> Result<String, String> {
    let kernel_name = req.get("kernel").and_then(|j| j.as_str());
    let src = req.get("src").and_then(|j| j.as_str());
    if kernel_name.is_none() && src.is_none() {
        return Err("tune needs a kernel name or a src".to_string());
    }
    let machine_name = req.get("machine").and_then(|j| j.as_str()).unwrap_or("p4e");
    let machine =
        parse_machine(machine_name).ok_or_else(|| format!("unknown machine {machine_name:?}"))?;
    let context = parse_context(req.get("context").and_then(|j| j.as_str()).unwrap_or("oc"))?;
    let n = req
        .get("n")
        .and_then(|j| j.as_u64())
        .unwrap_or(match context {
            Context::OutOfCache => 40_000,
            Context::InL2 => 1024,
        }) as usize;
    let seed = req.get("seed").and_then(|j| j.as_u64()).unwrap_or(0);
    let full = req.get("full").and_then(|j| j.as_bool()).unwrap_or(false);
    let strategy_name = req
        .get("strategy")
        .and_then(|j| j.as_str())
        .unwrap_or("line");
    let strategy = StrategySpec::parse(strategy_name)
        .ok_or_else(|| format!("unknown strategy {strategy_name:?}"))?;
    let budget = req.get("budget").and_then(|j| j.as_str());

    // Single-flight: identical concurrent requests coalesce. The first
    // computes and stores; waiters then find the stored winner and
    // short-circuit through the (re-verifying) warm-start path — the
    // determinism contract at the socket boundary.
    let flight_key = fnv64(
        format!(
            "{}|{}|{}|{}|{n}|{seed}|{full}|{strategy_name}|{}",
            kernel_name.unwrap_or(""),
            src.map(|s| format!("{:016x}", fnv64(s.as_bytes())))
                .unwrap_or_default(),
            machine_name,
            context.label(),
            budget.unwrap_or(""),
        )
        .as_bytes(),
    );
    {
        let mut inflight = server.inflight.lock().unwrap();
        while inflight.contains(&flight_key) {
            inflight = server.inflight_cv.wait(inflight).unwrap();
        }
        inflight.insert(flight_key);
    }
    let result = run_tune(
        server,
        kernel_name,
        src,
        machine,
        context,
        n,
        seed,
        full,
        strategy,
        budget,
    );
    {
        let mut inflight = server.inflight.lock().unwrap();
        inflight.remove(&flight_key);
    }
    server.inflight_cv.notify_all();
    result
}

#[allow(clippy::too_many_arguments)]
fn run_tune(
    server: &Arc<Server>,
    kernel_name: Option<&str>,
    src: Option<&str>,
    machine: MachineConfig,
    context: Context,
    n: usize,
    seed: u64,
    full: bool,
    strategy: StrategySpec,
    budget: Option<&str>,
) -> Result<String, String> {
    metrics::global().counter(metrics::DAEMON_SESSIONS).inc();
    let opts = if full {
        SearchOptions::default()
    } else {
        SearchOptions::quick()
    };
    let mut cfg = TuneConfig::paper()
        .machine(machine.clone())
        .context(context)
        .n(n)
        .seed(seed)
        .search(opts)
        .jobs(server.cfg.jobs)
        .cache(Arc::clone(&server.cache))
        .db(Arc::clone(&server.db))
        .strategy(strategy);
    if let Some(b) = budget {
        cfg = cfg.budget(Budget::parse(b).map_err(|e| format!("budget: {e}"))?);
    }

    let (result, cycles, mflops, label) = match kernel_name {
        Some(name) => {
            let kernel = find_kernel(name).ok_or_else(|| format!("unknown kernel {name:?}"))?;
            let out = cfg.tune(kernel).map_err(|e| e.to_string())?;
            (out.result, out.cycles, out.mflops, name.to_string())
        }
        None => {
            let out = cfg
                .tune_source(src.expect("checked by caller"))
                .map_err(|e| e.to_string())?;
            let cycles = out.result.best_cycles;
            (out.result, cycles, 0.0, "hil".to_string())
        }
    };
    let warm = result.strategy == STRATEGY_WARM;
    if warm {
        metrics::global().counter(metrics::DAEMON_WARM_HITS).inc();
    }
    let fp = machine_fingerprint(&machine);
    Ok(object(&[
        Field::Str("kernel", &label),
        Field::Str("machine", &fp),
        Field::Str("context", context.label()),
        Field::Num("n", n as u64),
        Field::Num("seed", seed),
        Field::Bool("warm", warm),
        Field::Str("strategy", &result.strategy),
        Field::Str("winner_strategy", &result.winner_strategy),
        Field::Num("default_cycles", result.default_cycles),
        Field::Num("best_cycles", result.best_cycles),
        Field::Num("cycles", cycles),
        Field::Float("mflops", mflops),
        Field::Num("evaluations", result.evaluations as u64),
        Field::Num("cache_hits", result.cache_hits as u64),
        Field::Num("pruned", result.pruned as u64),
        Field::Raw("params", params_json(&result.best)),
    ]))
}
