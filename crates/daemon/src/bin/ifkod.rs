//! `ifkod` — the tuning daemon executable.
//!
//! ```text
//! ifkod [--socket PATH] [--db DIR] [--cache DIR] [--jobs N] [--quiet]
//! ```
//!
//! Serves tune/query/pack requests over the Unix socket until a client
//! sends `shutdown` (`ifko daemon stop --socket PATH`). The tuned-results
//! database and evaluation cache stay resident for the daemon's
//! lifetime, so repeat tunes short-circuit on verified warm starts and
//! repeat candidates hit the cross-phase cache.

use ifko_daemon::server::{Daemon, DaemonConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = DaemonConfig::new("results/ifkod.sock", "results/db");
    let mut it = std::env::args().skip(1);
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--socket" | "-s" => match it.next() {
                Some(v) => cfg.socket = v.into(),
                None => return usage("--socket needs a value"),
            },
            "--db" => match it.next() {
                Some(v) => cfg.db_dir = v.into(),
                None => return usage("--db needs a value"),
            },
            "--cache" => match it.next() {
                Some(v) => cfg.cache_dir = Some(v.into()),
                None => return usage("--cache needs a value"),
            },
            "--jobs" | "-j" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.jobs = v,
                None => return usage("--jobs needs a number"),
            },
            "--quiet" | "-q" => cfg.quiet = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }
    match Daemon::start(cfg) {
        Ok(handle) => {
            handle.wait();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ifkod: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ifkod: {err}");
    }
    eprintln!("usage: ifkod [--socket PATH] [--db DIR] [--cache DIR] [--jobs N] [--quiet]");
    ExitCode::from(if err.is_empty() { 0 } else { 2 })
}
