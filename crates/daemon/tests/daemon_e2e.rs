//! End-to-end tests for the `ifkod` daemon: the engine's determinism
//! contract extended to the socket boundary, the in-memory-index
//! guarantee, and the pack → install artifact round trip.

use ifko::artifact;
use ifko::eval::machine_fingerprint;
use ifko::runner::Context;
use ifko::strategy::db::{db_key, params_json, record_json, shard_path, N_SHARDS};
use ifko::strategy::{repo_rev, StrategySpec, TunedDb, TunedRecord};
use ifko::{SearchOptions, TuneConfig};
use ifko_blas::hil_src::hil_source;
use ifko_blas::{Kernel, ALL_KERNELS};
use ifko_daemon::client::{Client, TuneRequest};
use ifko_daemon::server::{Daemon, DaemonConfig};
use ifko_fko::{CompileSession, TransformParams};
use ifko_xsim::p4e;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ifkod-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ddot() -> Kernel {
    *ALL_KERNELS.iter().find(|k| k.name() == "ddot").unwrap()
}

/// A synthetic-but-wellformed record keyed like a real tune of `kernel`
/// on P4E/oc under this repo revision.
fn synthetic_record(kernel: &str, cycles: u64) -> TunedRecord {
    let fp = machine_fingerprint(&p4e());
    let rev = repo_rev();
    let m = p4e();
    let k = ddot();
    let sess = CompileSession::from_source(&hil_source(k.op, k.prec), &m).unwrap();
    let params = TransformParams::defaults(sess.report(), &m);
    TunedRecord {
        key: db_key(kernel, "D", &fp, "oc", &rev),
        kernel: kernel.to_string(),
        prec: "D".to_string(),
        machine: fp,
        context: "oc".to_string(),
        rev,
        n: 1024,
        seed: 7,
        strategy: "line".to_string(),
        cycles,
        params,
        features: Some(vec![cycles as f64, 1.0]),
    }
}

/// The acceptance guard: a daemon holding >= 1k records answers
/// warm-start queries from the in-memory index — proven by deleting
/// every database file on disk after startup and querying anyway.
#[test]
fn queries_answer_from_memory_index_not_disk() {
    let db_dir = tmp("memidx-db");
    {
        let db = TunedDb::open(&db_dir).unwrap();
        for i in 0..1200u64 {
            db.store(&synthetic_record(&format!("kern{i}"), 1000 + i));
        }
        db.store(&synthetic_record("ddot", 555));
        db.compact();
    }
    let socket = db_dir.join("ifkod.sock");
    let handle = Daemon::start(DaemonConfig {
        socket: socket.clone(),
        db_dir: db_dir.clone(),
        cache_dir: None,
        jobs: 1,
        quiet: true,
    })
    .unwrap();

    // Pull the rug: no database file remains on disk.
    for i in 0..N_SHARDS {
        std::fs::remove_file(shard_path(&db_dir, i)).unwrap();
    }

    let mut client = Client::connect(&socket).unwrap();
    client.ping().unwrap();
    let v = client.query("ddot", "p4e", "oc", None, None).unwrap();
    assert_eq!(v.get("found").and_then(|j| j.as_bool()), Some(true));
    let rec = v.get("record").unwrap();
    assert_eq!(rec.get("cycles").and_then(|j| j.as_u64()), Some(555));

    // A deep key from the 1k bulk answers too.
    let v = client
        .query("kern1100", "p4e", "oc", Some("D"), None)
        .unwrap();
    assert_eq!(v.get("found").and_then(|j| j.as_bool()), Some(true));
    assert_eq!(
        v.get("record")
            .and_then(|r| r.get("cycles"))
            .and_then(|j| j.as_u64()),
        Some(2100)
    );

    // Nearest-sfv transfer lookup for a key with no exact hit.
    let v = client
        .query(
            "no-such-kernel",
            "p4e",
            "oc",
            Some("D"),
            Some(&[1555.0, 1.0]),
        )
        .unwrap();
    assert_eq!(v.get("found").and_then(|j| j.as_bool()), Some(true));
    assert_eq!(v.get("nearest").and_then(|j| j.as_bool()), Some(true));

    // Misses report cleanly.
    let v = client
        .query("no-such-kernel", "p4e", "oc", Some("D"), None)
        .unwrap();
    assert_eq!(v.get("found").and_then(|j| j.as_bool()), Some(false));

    // Stats served from the index as well.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("live").and_then(|j| j.as_u64()), Some(1201));

    handle.stop();
    let _ = std::fs::remove_dir_all(&db_dir);
}

/// Serial-reference tune used by the concurrency test.
fn serial_reference(db_dir: &PathBuf, n: usize, seed: u64) -> (String, u64) {
    let cfg = TuneConfig::paper()
        .machine(p4e())
        .context(Context::OutOfCache)
        .n(n)
        .seed(seed)
        .search(SearchOptions::quick())
        .jobs(1)
        .strategy(StrategySpec::Line)
        .tuned_db(db_dir)
        .unwrap();
    let out = cfg.tune(ddot()).unwrap();
    (params_json(&out.result.best), out.result.best_cycles)
}

/// N parallel clients tuning the same kernel/machine converge to the
/// bit-identical winner of a serial run — including while a client
/// killed mid-request tears its connection.
#[test]
fn concurrent_daemon_sessions_match_serial_winner() {
    let n = 2048;
    let seed = 11;
    let serial_dir = tmp("concurrent-serial");
    let (serial_params, serial_cycles) = serial_reference(&serial_dir, n, seed);

    let daemon_dir = tmp("concurrent-daemon");
    let socket = daemon_dir.join("ifkod.sock");
    let handle = Daemon::start(DaemonConfig {
        socket: socket.clone(),
        db_dir: daemon_dir.clone(),
        cache_dir: None,
        jobs: 2,
        quiet: true,
    })
    .unwrap();

    // A client dies mid-request: frame header promises 100 bytes, 10
    // arrive, connection drops. The daemon must shrug it off.
    {
        use std::io::Write;
        let mut s = std::os::unix::net::UnixStream::connect(&socket).unwrap();
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(b"0123456789").unwrap();
        drop(s);
    }

    let socket = Arc::new(socket);
    let results: Vec<(String, u64, bool)> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..4 {
            let socket = Arc::clone(&socket);
            joins.push(scope.spawn(move || {
                let mut client = Client::connect(socket.as_path()).unwrap();
                let v = client
                    .tune(&TuneRequest {
                        kernel: Some("ddot".to_string()),
                        machine: "p4e".to_string(),
                        context: "oc".to_string(),
                        n: Some(n),
                        seed: Some(seed),
                        ..TuneRequest::default()
                    })
                    .unwrap();
                (
                    format!("{:?}", v.get("params").unwrap()),
                    v.get("best_cycles").and_then(|j| j.as_u64()).unwrap(),
                    v.get("warm").and_then(|j| j.as_bool()).unwrap(),
                )
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    // Parse the serial params through the same Json debug rendering so
    // the comparison is representation-for-representation.
    let serial_rendered = format!("{:?}", ifko::report::parse_json(&serial_params).unwrap());
    for (params, cycles, _warm) in &results {
        assert_eq!(params, &serial_rendered, "winner params diverged");
        assert_eq!(*cycles, serial_cycles, "winner cycles diverged");
    }
    // The duplicates coalesced behind the first session and finished on
    // the warm path.
    assert!(
        results.iter().filter(|(_, _, warm)| *warm).count() >= 3,
        "expected coalesced requests to warm-start: {results:?}"
    );

    // And a repeat tune over the live daemon is a warm hit end to end.
    let mut client = Client::connect(socket.as_path()).unwrap();
    let v = client
        .tune(&TuneRequest {
            kernel: Some("ddot".to_string()),
            machine: "p4e".to_string(),
            context: "oc".to_string(),
            n: Some(n),
            seed: Some(seed),
            ..TuneRequest::default()
        })
        .unwrap();
    assert_eq!(v.get("warm").and_then(|j| j.as_bool()), Some(true));

    // Daemon metrics counted the sessions and the torn connection.
    let text = client.metrics().unwrap();
    assert!(text.contains("ifkod_sessions_total"), "{text}");
    assert!(text.contains("ifkod_errors_total"), "{text}");

    handle.stop();
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&daemon_dir);
}

/// `pack` from a live daemon → `install` into an empty results dir →
/// the first tune against it short-circuits on a verified warm start
/// with the bit-identical winner.
#[test]
fn pack_install_round_trip_warm_starts_fresh_deployment() {
    let n = 2048;
    let seed = 23;
    let source_dir = tmp("pack-source");
    // Tune once to populate the source database.
    let cfg = TuneConfig::paper()
        .machine(p4e())
        .context(Context::OutOfCache)
        .n(n)
        .seed(seed)
        .search(SearchOptions::quick())
        .jobs(1)
        .tuned_db(&source_dir)
        .unwrap();
    let out = cfg.tune(ddot()).unwrap();
    assert_ne!(out.result.strategy, "warm");
    let exported = params_json(&out.result.best);

    // Pack through the daemon.
    let socket = source_dir.join("ifkod.sock");
    let handle = Daemon::start(DaemonConfig {
        socket: socket.clone(),
        db_dir: source_dir.clone(),
        cache_dir: None,
        jobs: 1,
        quiet: true,
    })
    .unwrap();
    let mut client = Client::connect(&socket).unwrap();
    let text = client.pack().unwrap();
    handle.stop();

    // Install into an empty deployment, re-verification on.
    let deploy_dir = tmp("pack-deploy");
    let deploy_db = Arc::new(TunedDb::open(&deploy_dir).unwrap());
    let report = artifact::install(&text, &deploy_db, true).unwrap();
    assert_eq!(report.installed, 1);
    assert_eq!(report.verified, 1);
    assert!(report.rejected.is_empty());

    // The deployment's first tune warm-starts bit-identically.
    let cfg = TuneConfig::paper()
        .machine(p4e())
        .context(Context::OutOfCache)
        .n(n)
        .seed(seed)
        .search(SearchOptions::quick())
        .jobs(1)
        .db(Arc::clone(&deploy_db))
        .strategy(StrategySpec::Line);
    let warm_out = cfg.tune(ddot()).unwrap();
    assert_eq!(
        warm_out.result.strategy, "warm",
        "first tune not a warm hit"
    );
    assert_eq!(
        params_json(&warm_out.result.best),
        exported,
        "winner diverged"
    );

    // The record text itself round-tripped bit-identically.
    let art = artifact::parse(&text).unwrap();
    let installed = deploy_db.lookup(&art.records[0].key).unwrap();
    assert_eq!(record_json(&installed), record_json(&art.records[0]));

    let _ = std::fs::remove_dir_all(&source_dir);
    let _ = std::fs::remove_dir_all(&deploy_dir);
}
