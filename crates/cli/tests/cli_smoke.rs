//! Smoke tests of the `ifko` CLI binary against the shipped sample
//! kernels.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ifko")
}

fn repo(path: &str) -> String {
    format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), path)
}

#[test]
fn analyze_reports_search_feedback() {
    let out = Command::new(bin())
        .args(["analyze", &repo("kernels/ddot.hil")])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vectorizable : yes"));
    assert!(text.contains("PF candidates: X, Y"));
    assert!(text.contains("ReductionAdd"));
}

#[test]
fn compile_dumps_assembly() {
    let out = Command::new(bin())
        .args([
            "compile",
            &repo("kernels/ddot.hil"),
            "--ur",
            "4",
            "--scalar",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fmuld"), "scalar multiply expected:\n{text}");
    assert!(text.contains("jgt"), "loop branch expected");
}

#[test]
fn tune_improves_custom_kernel() {
    let out = Command::new(bin())
        .args(["tune", &repo("kernels/waxpby.hil"), "--n", "4000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("winning parameters"));
    assert!(text.contains("SV  : yes"));
}

#[test]
fn tune_with_trace_and_metrics_then_report() {
    let dir = std::env::temp_dir().join(format!("ifko-cli-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.jsonl");
    let metrics = dir.join("m.json");

    let out = Command::new(bin())
        .args([
            "tune",
            &repo("kernels/ddot.hil"),
            "--n",
            "2000",
            "--jobs",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        m.contains("ifko_engine_evals_total"),
        "metrics missing:\n{m}"
    );

    // The analyzer consumes what --trace wrote.
    let out = Command::new(bin())
        .args(["report", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stage time attribution"), "report:\n{text}");
    assert!(text.contains("simulate"));

    // JSON format is machine-readable and mentions the same scope.
    let out = Command::new(bin())
        .args(["report", trace.to_str().unwrap(), "--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.trim_start().starts_with('{'));
    assert!(json.contains("\"scopes\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_rejects_missing_input() {
    let out = Command::new(bin()).args(["report"]).output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["report", "no_such_trace.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bad_file_fails_cleanly() {
    let out = Command::new(bin())
        .args(["analyze", "no_such.hil"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn nrm2_sample_compiles_with_sqrt() {
    let out = Command::new(bin())
        .args(["compile", &repo("kernels/snrm2.hil"), "--no-pf"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fsqrt"), "sqrt epilogue expected:\n{text}");
}

#[test]
fn db_tune_pack_install_round_trip() {
    let dir = std::env::temp_dir().join(format!("ifko-cli-pack-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let src_db = dir.join("src-db");
    let dst_db = dir.join("dst-db");
    let artifact = dir.join("tunes.ifko");

    // Cold tune with a database attached.
    let out = Command::new(bin())
        .args([
            "tune",
            &repo("kernels/ddot.hil"),
            "--n",
            "2000",
            "--db",
            src_db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sharded"), "db banner missing:\n{err}");

    // `db stats` sees the stored winner, text and json.
    let out = Command::new(bin())
        .args(["db", "stats", "--db", src_db.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("live records : 1"), "stats:\n{text}");
    let out = Command::new(bin())
        .args([
            "db",
            "stats",
            "--db",
            src_db.to_str().unwrap(),
            "--format",
            "json",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"live\":1"), "json stats:\n{json}");
    assert!(json.contains("\"shards\":["));

    // `db compact` leaves exactly the live records on disk.
    let out = Command::new(bin())
        .args(["db", "compact", "--db", src_db.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // pack → install into a fresh database, with re-verification.
    let out = Command::new(bin())
        .args([
            "pack",
            "--db",
            src_db.to_str().unwrap(),
            "--out",
            artifact.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let packed = std::fs::read_to_string(&artifact).unwrap();
    assert!(packed.starts_with("{\"magic\":\"ifko-tune-cache\""));

    let out = Command::new(bin())
        .args([
            "install",
            artifact.to_str().unwrap(),
            "--db",
            dst_db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("installed 1 record(s)"),
        "install said:\n{text}"
    );

    // The installed winner warm-starts the next tune in the new home.
    let out = Command::new(bin())
        .args([
            "tune",
            &repo("kernels/ddot.hil"),
            "--n",
            "2000",
            "--db",
            dst_db.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("strategy           : warm"),
        "expected a warm start after install:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `ifko worker` speaks the wire protocol on stdin/stdout: handshake
/// with a scope ack, one evaluated candidate, clean shutdown.
#[test]
fn worker_subcommand_speaks_the_wire_protocol() {
    use ifko::eval::EvalScope;
    use ifko::report::{parse_json, Json};
    use ifko::worker::WorkerSpec;
    use ifko::{proto, SearchOptions};
    use std::process::Stdio;

    let mach = ifko_xsim::p4e();
    let opts = SearchOptions::quick();
    let ctx = ifko::runner::Context::OutOfCache;
    let scope = EvalScope::new("ddot", &mach, ctx, 512, 0xb1a5, &opts.timer);
    let spec = WorkerSpec::blas("ddot", &mach, ctx, 512, 0xb1a5, &opts, &scope);

    let mut child = Command::new(bin())
        .arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = child.stdout.take().unwrap();
    let mut reply = |req: &str| -> Json {
        proto::write_frame(&mut stdin, req).unwrap();
        parse_json(&proto::read_frame(&mut stdout).unwrap().unwrap()).unwrap()
    };

    let ack = reply(&spec.to_json());
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        ack.get("scope").and_then(Json::as_str),
        Some(scope.key()),
        "worker recomputed a different scope"
    );

    let ev = reply(&format!(
        "{{\"cmd\":\"eval\",\"id\":42,\"params\":{}}}",
        ifko::strategy::db::params_json(&ifko_fko::TransformParams::off())
    ));
    assert_eq!(ev.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(ev.get("id").and_then(Json::as_u64), Some(42));
    assert!(ev.get("cycles").and_then(Json::as_u64).is_some());

    let bye = reply("{\"cmd\":\"shutdown\"}");
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    assert!(child.wait().unwrap().success());
}

/// `tune --workers 2` dispatches to a pool of `ifko worker` children
/// and still prints the winning parameters.
#[test]
fn tune_with_worker_pool_smokes() {
    let out = Command::new(bin())
        .args([
            "tune",
            &repo("kernels/ddot.hil"),
            "--n",
            "2000",
            "--workers",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("winning parameters"), "tune said:\n{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("worker pool"),
        "worker-pool banner missing:\n{err}"
    );
}

/// `ifko db prune --rev-missing` drops records from other repo
/// revisions (IFKO_REPO_REV pins the revision on both sides).
#[test]
fn db_prune_rev_missing_drops_stale_records() {
    let dir = std::env::temp_dir().join(format!("ifko-cli-prune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db");

    // Store a winner under revision "aaa".
    let out = Command::new(bin())
        .args([
            "tune",
            &repo("kernels/ddot.hil"),
            "--n",
            "2000",
            "--db",
            db.to_str().unwrap(),
        ])
        .env("IFKO_REPO_REV", "aaa")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Same revision: nothing to prune.
    let out = Command::new(bin())
        .args(["db", "prune", "--rev-missing", "--db", db.to_str().unwrap()])
        .env("IFKO_REPO_REV", "aaa")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pruned 0 record(s)"), "prune said:\n{text}");

    // From revision "bbb" the stored record's revision is missing.
    let out = Command::new(bin())
        .args(["db", "prune", "--rev-missing", "--db", db.to_str().unwrap()])
        .env("IFKO_REPO_REV", "bbb")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pruned 1 record(s)"), "prune said:\n{text}");
    assert!(text.contains("live records : 0"), "prune said:\n{text}");

    // `prune` without a criterion is an error, as is --rev-missing on
    // another subcommand.
    let out = Command::new(bin())
        .args(["db", "prune", "--db", db.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["db", "stats", "--rev-missing", "--db", db.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_remote_tune_and_control_plane() {
    let dir = std::env::temp_dir().join(format!("ifko-cli-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("ifkod.sock");
    let db = dir.join("db");

    // `ifkod` lives in the daemon crate; drive it through the library so
    // this test does not depend on a second binary being built first.
    let handle = ifko_daemon::server::Daemon::start(ifko_daemon::server::DaemonConfig {
        socket: socket.clone(),
        db_dir: db.clone(),
        cache_dir: None,
        jobs: 1,
        quiet: true,
    })
    .unwrap();

    let remote_tune = || {
        Command::new(bin())
            .args([
                "tune",
                &repo("kernels/ddot.hil"),
                "--n",
                "2000",
                "--remote",
                socket.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let out = remote_tune();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("warm start         : no"), "cold:\n{text}");

    // Second identical request is a warm hit from the daemon's index.
    let out = remote_tune();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("warm start         : yes"), "warm:\n{text}");

    // Control plane: ping, metrics, stats.
    let out = Command::new(bin())
        .args(["daemon", "ping", "--socket", socket.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = Command::new(bin())
        .args(["daemon", "metrics", "--socket", socket.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("ifkod_requests_total"),
        "daemon metrics:\n{text}"
    );
    let out = Command::new(bin())
        .args(["daemon", "stats", "--socket", socket.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("live records : 1"), "daemon stats:\n{text}");

    // Clean shutdown through the CLI.
    let out = Command::new(bin())
        .args(["daemon", "stop", "--socket", socket.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
