//! Smoke tests of the `ifko` CLI binary against the shipped sample
//! kernels.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ifko")
}

fn repo(path: &str) -> String {
    format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), path)
}

#[test]
fn analyze_reports_search_feedback() {
    let out = Command::new(bin())
        .args(["analyze", &repo("kernels/ddot.hil")])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vectorizable : yes"));
    assert!(text.contains("PF candidates: X, Y"));
    assert!(text.contains("ReductionAdd"));
}

#[test]
fn compile_dumps_assembly() {
    let out = Command::new(bin())
        .args([
            "compile",
            &repo("kernels/ddot.hil"),
            "--ur",
            "4",
            "--scalar",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fmuld"), "scalar multiply expected:\n{text}");
    assert!(text.contains("jgt"), "loop branch expected");
}

#[test]
fn tune_improves_custom_kernel() {
    let out = Command::new(bin())
        .args(["tune", &repo("kernels/waxpby.hil"), "--n", "4000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("winning parameters"));
    assert!(text.contains("SV  : yes"));
}

#[test]
fn bad_file_fails_cleanly() {
    let out = Command::new(bin())
        .args(["analyze", "no_such.hil"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn nrm2_sample_compiles_with_sqrt() {
    let out = Command::new(bin())
        .args(["compile", &repo("kernels/snrm2.hil"), "--no-pf"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fsqrt"), "sqrt epilogue expected:\n{text}");
}
