//! Smoke tests of the `ifko` CLI binary against the shipped sample
//! kernels.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ifko")
}

fn repo(path: &str) -> String {
    format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), path)
}

#[test]
fn analyze_reports_search_feedback() {
    let out = Command::new(bin())
        .args(["analyze", &repo("kernels/ddot.hil")])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vectorizable : yes"));
    assert!(text.contains("PF candidates: X, Y"));
    assert!(text.contains("ReductionAdd"));
}

#[test]
fn compile_dumps_assembly() {
    let out = Command::new(bin())
        .args([
            "compile",
            &repo("kernels/ddot.hil"),
            "--ur",
            "4",
            "--scalar",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fmuld"), "scalar multiply expected:\n{text}");
    assert!(text.contains("jgt"), "loop branch expected");
}

#[test]
fn tune_improves_custom_kernel() {
    let out = Command::new(bin())
        .args(["tune", &repo("kernels/waxpby.hil"), "--n", "4000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("winning parameters"));
    assert!(text.contains("SV  : yes"));
}

#[test]
fn tune_with_trace_and_metrics_then_report() {
    let dir = std::env::temp_dir().join(format!("ifko-cli-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.jsonl");
    let metrics = dir.join("m.json");

    let out = Command::new(bin())
        .args([
            "tune",
            &repo("kernels/ddot.hil"),
            "--n",
            "2000",
            "--jobs",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        m.contains("ifko_engine_evals_total"),
        "metrics missing:\n{m}"
    );

    // The analyzer consumes what --trace wrote.
    let out = Command::new(bin())
        .args(["report", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stage time attribution"), "report:\n{text}");
    assert!(text.contains("simulate"));

    // JSON format is machine-readable and mentions the same scope.
    let out = Command::new(bin())
        .args(["report", trace.to_str().unwrap(), "--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.trim_start().starts_with('{'));
    assert!(json.contains("\"scopes\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_rejects_missing_input() {
    let out = Command::new(bin()).args(["report"]).output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["report", "no_such_trace.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bad_file_fails_cleanly() {
    let out = Command::new(bin())
        .args(["analyze", "no_such.hil"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn nrm2_sample_compiles_with_sqrt() {
    let out = Command::new(bin())
        .args(["compile", &repo("kernels/snrm2.hil"), "--no-pf"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fsqrt"), "sqrt epilogue expected:\n{text}");
}
