//! Tiny dependency-free flag parser for the `ifko` CLI.

#[derive(Debug, Clone)]
pub struct Args {
    pub file: String,
    pub machine: String,
    pub context: String,
    pub n: Option<usize>,
    pub seed: u64,
    pub full: bool,
    pub scalar: bool,
    pub ur: Option<u32>,
    pub ae: Option<u32>,
    pub wnt: bool,
    pub no_pf: bool,
    pub pf_dist: Option<i64>,
    pub jobs: usize,
    pub workers: usize,
    pub trace: Option<String>,
    pub trace_chrome: Option<String>,
    pub timeseries: Option<String>,
    pub metrics: Option<String>,
    pub verify_ir: bool,
    pub no_prune: bool,
    pub strategy: Option<String>,
    pub budget: Option<String>,
    pub warm_start: bool,
    pub model_prune: Option<f64>,
    pub db: Option<String>,
    pub chaos: Option<String>,
    pub max_retries: Option<u32>,
    pub profile_pipeline: bool,
    pub remote: Option<String>,
}

impl Args {
    pub fn parse(argv: Vec<String>) -> Result<Args, String> {
        let mut a = Args {
            file: String::new(),
            machine: "p4e".into(),
            context: "oc".into(),
            n: None,
            seed: 0xb1a5,
            full: false,
            scalar: false,
            ur: None,
            ae: None,
            wnt: false,
            no_pf: false,
            pf_dist: None,
            jobs: 1,
            workers: 0,
            trace: None,
            trace_chrome: None,
            timeseries: None,
            metrics: None,
            verify_ir: false,
            no_prune: false,
            strategy: None,
            budget: None,
            warm_start: false,
            model_prune: None,
            db: None,
            chaos: None,
            max_retries: None,
            profile_pipeline: false,
            remote: None,
        };
        let mut it = argv.into_iter();
        while let Some(tok) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match tok.as_str() {
                "--machine" | "-m" => a.machine = value("--machine")?,
                "--context" | "-c" => a.context = value("--context")?,
                "--n" => a.n = Some(value("--n")?.parse().map_err(|e| format!("--n: {e}"))?),
                "--seed" => {
                    a.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--full" => a.full = true,
                "--scalar" => a.scalar = true,
                "--ur" => a.ur = Some(value("--ur")?.parse().map_err(|e| format!("--ur: {e}"))?),
                "--ae" => a.ae = Some(value("--ae")?.parse().map_err(|e| format!("--ae: {e}"))?),
                "--wnt" => a.wnt = true,
                "--no-pf" => a.no_pf = true,
                "--pf-dist" => {
                    a.pf_dist = Some(
                        value("--pf-dist")?
                            .parse()
                            .map_err(|e| format!("--pf-dist: {e}"))?,
                    )
                }
                "--jobs" | "-j" => {
                    a.jobs = value("--jobs")?
                        .parse::<usize>()
                        .map_err(|e| format!("--jobs: {e}"))?
                        .max(1)
                }
                "--workers" => {
                    a.workers = value("--workers")?
                        .parse::<usize>()
                        .map_err(|e| format!("--workers: {e}"))?
                }
                "--trace" => a.trace = Some(value("--trace")?),
                "--trace-chrome" => a.trace_chrome = Some(value("--trace-chrome")?),
                "--timeseries" => a.timeseries = Some(value("--timeseries")?),
                "--metrics" => a.metrics = Some(value("--metrics")?),
                "--verify-ir" => a.verify_ir = true,
                "--profile-pipeline" => a.profile_pipeline = true,
                "--no-prune" => a.no_prune = true,
                "--strategy" => a.strategy = Some(value("--strategy")?),
                "--budget" => a.budget = Some(value("--budget")?),
                "--warm-start" => a.warm_start = true,
                "--model-prune" => {
                    let frac: f64 = value("--model-prune")?
                        .parse()
                        .map_err(|e| format!("--model-prune: {e}"))?;
                    if !(0.0..=1.0).contains(&frac) {
                        return Err(format!("--model-prune: {frac} outside [0, 1]"));
                    }
                    a.model_prune = Some(frac);
                }
                "--db" => a.db = Some(value("--db")?),
                "--remote" => a.remote = Some(value("--remote")?),
                "--chaos" => a.chaos = Some(value("--chaos")?),
                "--max-retries" => {
                    a.max_retries = Some(
                        value("--max-retries")?
                            .parse()
                            .map_err(|e| format!("--max-retries: {e}"))?,
                    )
                }
                other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
                file => {
                    if a.file.is_empty() {
                        a.file = file.to_string();
                    } else {
                        return Err(format!("unexpected argument `{file}`"));
                    }
                }
            }
        }
        if a.file.is_empty() {
            return Err("no kernel file given".into());
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_and_positional() {
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert_eq!(a.file, "k.hil");
        assert_eq!(a.machine, "p4e");
        assert_eq!(a.context, "oc");
        assert!(!a.full);
    }

    #[test]
    fn flags_parse() {
        let a = Args::parse(v(&[
            "k.hil",
            "--machine",
            "opteron",
            "--context",
            "ic",
            "--n",
            "2048",
            "--ur",
            "8",
            "--ae",
            "4",
            "--wnt",
            "--no-pf",
            "--full",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(a.machine, "opteron");
        assert_eq!(a.context, "ic");
        assert_eq!(a.n, Some(2048));
        assert_eq!(a.ur, Some(8));
        assert_eq!(a.ae, Some(4));
        assert!(a.wnt && a.no_pf && a.full);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn jobs_and_trace_parse() {
        let a = Args::parse(v(&[
            "k.hil",
            "--jobs",
            "4",
            "--trace",
            "t.jsonl",
            "--metrics",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(a.jobs, 4);
        assert_eq!(a.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(a.metrics.as_deref(), Some("m.json"));
        // --jobs clamps to at least one worker.
        let a = Args::parse(v(&["k.hil", "-j", "0"])).unwrap();
        assert_eq!(a.jobs, 1);
    }

    #[test]
    fn workers_parse() {
        // --workers 0 (the default) means in-process evaluation — no
        // clamp, unlike --jobs.
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert_eq!(a.workers, 0);
        let a = Args::parse(v(&["k.hil", "--workers", "4", "--jobs", "2"])).unwrap();
        assert_eq!(a.workers, 4);
        assert_eq!(a.jobs, 2);
        assert!(Args::parse(v(&["k.hil", "--workers", "nope"])).is_err());
        assert!(Args::parse(v(&["k.hil", "--workers"])).is_err());
    }

    #[test]
    fn observability_sinks_parse() {
        let a = Args::parse(v(&[
            "k.hil",
            "--trace-chrome",
            "t.chrome.json",
            "--timeseries",
            "ts.jsonl",
        ]))
        .unwrap();
        assert_eq!(a.trace_chrome.as_deref(), Some("t.chrome.json"));
        assert_eq!(a.timeseries.as_deref(), Some("ts.jsonl"));
        // Off by default, and both flags require a value.
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert!(a.trace_chrome.is_none() && a.timeseries.is_none());
        assert!(Args::parse(v(&["k.hil", "--trace-chrome"])).is_err());
        assert!(Args::parse(v(&["k.hil", "--timeseries"])).is_err());
    }

    #[test]
    fn verify_and_prune_flags_parse() {
        let a = Args::parse(v(&["k.hil", "--verify-ir", "--no-prune"])).unwrap();
        assert!(a.verify_ir && a.no_prune);
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert!(!a.verify_ir && !a.no_prune);
    }

    #[test]
    fn profile_pipeline_flag_parses() {
        let a = Args::parse(v(&["k.hil", "--profile-pipeline"])).unwrap();
        assert!(a.profile_pipeline);
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert!(!a.profile_pipeline);
    }

    #[test]
    fn strategy_flags_parse() {
        let a = Args::parse(v(&[
            "k.hil",
            "--strategy",
            "portfolio",
            "--budget",
            "64",
            "--warm-start",
            "--db",
            "results/db",
        ]))
        .unwrap();
        assert_eq!(a.strategy.as_deref(), Some("portfolio"));
        assert_eq!(a.budget.as_deref(), Some("64"));
        assert!(a.warm_start);
        assert_eq!(a.db.as_deref(), Some("results/db"));
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert!(a.strategy.is_none() && a.budget.is_none() && !a.warm_start && a.db.is_none());
    }

    #[test]
    fn model_prune_flag_parses_and_validates() {
        let a = Args::parse(v(&["k.hil", "--model-prune", "0.5"])).unwrap();
        assert_eq!(a.model_prune, Some(0.5));
        // Off by default; bad or out-of-range values are rejected.
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert!(a.model_prune.is_none());
        assert!(Args::parse(v(&["k.hil", "--model-prune"])).is_err());
        assert!(Args::parse(v(&["k.hil", "--model-prune", "1.5"])).is_err());
        assert!(Args::parse(v(&["k.hil", "--model-prune", "-0.1"])).is_err());
        assert!(Args::parse(v(&["k.hil", "--model-prune", "x"])).is_err());
    }

    #[test]
    fn chaos_flags_parse() {
        let a = Args::parse(v(&["k.hil", "--chaos", "7:0.2", "--max-retries", "5"])).unwrap();
        assert_eq!(a.chaos.as_deref(), Some("7:0.2"));
        assert_eq!(a.max_retries, Some(5));
        // Off by default: no plan, retry budget left to the library.
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert!(a.chaos.is_none() && a.max_retries.is_none());
        assert!(Args::parse(v(&["k.hil", "--max-retries", "x"])).is_err());
        assert!(Args::parse(v(&["k.hil", "--chaos"])).is_err());
    }

    #[test]
    fn remote_flag_parses() {
        let a = Args::parse(v(&["k.hil", "--remote", "results/ifkod.sock"])).unwrap();
        assert_eq!(a.remote.as_deref(), Some("results/ifkod.sock"));
        // Off by default, and the socket path is required.
        let a = Args::parse(v(&["k.hil"])).unwrap();
        assert!(a.remote.is_none());
        assert!(Args::parse(v(&["k.hil", "--remote"])).is_err());
    }

    #[test]
    fn missing_file_rejected() {
        assert!(Args::parse(v(&["--wnt"])).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Args::parse(v(&["k.hil", "--bogus"])).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Args::parse(v(&["k.hil", "--ur"])).is_err());
    }
}
