//! `ifko` — the command-line driver of the iterative/empirical compiler.
//!
//! ```text
//! ifko analyze  kernel.hil [--machine p4e|opteron]
//! ifko compile  kernel.hil [--machine M] [--scalar] [--ur N] [--ae N]
//!                          [--wnt] [--pf-dist BYTES] [--no-pf]
//! ifko tune     kernel.hil [--machine M] [--context oc|ic] [--n N]
//!                          [--seed S] [--full] [--jobs N] [--trace PATH]
//!                          [--metrics PATH]
//! ifko report   trace.jsonl [trace2.jsonl ...] [--format text|json|md]
//! ```
//!
//! `analyze` prints what FKO reports back to the search (paper §2.2.2);
//! `compile` runs the full pipeline at explicit parameters and dumps the
//! generated pseudo-assembly; `tune` runs the empirical line search with
//! differential verification against the untransformed build and reports
//! the winning parameters — for *any* kernel written in the HIL, not only
//! the BLAS suite; `report` analyzes search traces written by `--trace`
//! (convergence, per-phase attribution, stage time breakdown, cache
//! effectiveness).

use ifko::report::{report_files, ReportFormat};
use ifko::runner::Context;
use ifko::{SearchOptions, TuneConfig};
use ifko_fko::{analyze_kernel, compile_ir, TransformParams};
use ifko_xsim::{asm, opteron, p4e, MachineConfig};
use std::process::ExitCode;

mod args;
use args::Args;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("usage: ifko <analyze|compile|tune|report> <file> [options]");
        return ExitCode::from(2);
    }
    let cmd = argv.remove(0);
    // `report` takes multiple trace files, not one kernel file: it has its
    // own tiny flag loop instead of the shared `Args`.
    if cmd == "report" {
        return match cmd_report(argv) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ifko: {e}");
                ExitCode::from(2)
            }
        };
    }
    let mut args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ifko: {e}");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ifko: cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    let machine = match args.machine.as_str() {
        "p4e" => p4e(),
        "opteron" | "opt" => opteron(),
        other => {
            eprintln!("ifko: unknown machine `{other}` (p4e | opteron)");
            return ExitCode::from(2);
        }
    };

    let r = match cmd.as_str() {
        "analyze" => cmd_analyze(&src, &machine),
        "compile" => cmd_compile(&src, &machine, &args),
        "tune" => cmd_tune(&src, &machine, &mut args),
        other => {
            eprintln!("ifko: unknown command `{other}`");
            return ExitCode::from(2);
        }
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ifko: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_report(argv: Vec<String>) -> Result<(), String> {
    let mut files: Vec<String> = Vec::new();
    let mut format = ReportFormat::Text;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = ReportFormat::parse(&v)
                    .ok_or_else(|| format!("unknown format `{v}` (text | json | md)"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return Err("no trace files given (usage: ifko report TRACE.jsonl... [--format F])".into());
    }
    let out = report_files(&files, format).map_err(|e| e.to_string())?;
    print!("{out}");
    Ok(())
}

fn cmd_analyze(src: &str, machine: &MachineConfig) -> Result<(), String> {
    let (ir, rep) = analyze_kernel(src, machine).map_err(|e| e.to_string())?;
    println!("kernel       : {} ({:?})", ir.name, ir.prec);
    println!("machine      : {}", rep.arch.name);
    for (i, (size, line)) in rep.arch.caches.iter().enumerate() {
        println!("cache L{}     : {} KB, {}B lines", i + 1, size / 1024, line);
    }
    println!("L_e          : {} elements per line", rep.arch.line_elems);
    println!(
        "tuned loop   : {}",
        if rep.has_tuned_loop { "found" } else { "NONE" }
    );
    println!("max unroll   : {}", rep.max_unroll);
    match &rep.vectorizable {
        Ok(()) => println!("vectorizable : yes"),
        Err(b) => println!("vectorizable : no ({b})"),
    }
    println!(
        "AE candidates: {}",
        if rep.ae_candidates.is_empty() {
            "none".to_string()
        } else {
            format!("{} accumulator(s)", rep.ae_candidates.len())
        }
    );
    let pf: Vec<String> = rep
        .pf_candidates
        .iter()
        .map(|p| ir.ptrs[p.0 as usize].name.clone())
        .collect();
    println!(
        "PF candidates: {}",
        if pf.is_empty() {
            "none".into()
        } else {
            pf.join(", ")
        }
    );
    let wnt: Vec<String> = rep
        .wnt_candidates
        .iter()
        .map(|p| ir.ptrs[p.0 as usize].name.clone())
        .collect();
    println!(
        "WNT targets  : {}",
        if wnt.is_empty() {
            "none".into()
        } else {
            wnt.join(", ")
        }
    );
    println!("\nscalars (vreg: role, sets/uses):");
    for s in &rep.scalars {
        println!("  v{:<4} {:?}  {}/{}", s.vreg, s.role, s.sets, s.uses);
    }
    Ok(())
}

fn cmd_compile(src: &str, machine: &MachineConfig, args: &Args) -> Result<(), String> {
    let (ir, rep) = analyze_kernel(src, machine).map_err(|e| e.to_string())?;
    let mut p = TransformParams::defaults(&rep, machine);
    if args.scalar {
        p.simd = false;
    }
    if let Some(ur) = args.ur {
        p.unroll = ur;
    }
    if let Some(ae) = args.ae {
        p.accum_expand = ae;
    }
    if args.wnt {
        p.wnt = true;
    }
    if args.no_pf {
        p.prefetch.clear();
    } else if let Some(d) = args.pf_dist {
        for s in &mut p.prefetch {
            s.dist = d;
        }
    }
    let compiled = compile_ir(&ir, &p, &rep).map_err(|e| e.to_string())?;
    eprintln!(
        "# {} for {}: {} instructions, frame {} bytes",
        compiled.name,
        machine.name,
        compiled.program.len(),
        compiled.frame_bytes
    );
    print!("{}", asm::disassemble(&compiled.program));
    Ok(())
}

fn cmd_tune(src: &str, machine: &MachineConfig, args: &mut Args) -> Result<(), String> {
    let context = match args.context.as_str() {
        "oc" => Context::OutOfCache,
        "ic" => Context::InL2,
        other => return Err(format!("unknown context `{other}` (oc | ic)")),
    };
    let n = args.n.unwrap_or(match context {
        Context::OutOfCache => 40_000,
        Context::InL2 => 1024,
    });
    let opts = if args.full {
        SearchOptions::default()
    } else {
        SearchOptions::quick()
    };
    let mut cfg = TuneConfig::paper()
        .machine(machine.clone())
        .context(context)
        .n(n)
        .seed(args.seed)
        .search(opts)
        .jobs(args.jobs);
    if let Some(path) = &args.trace {
        cfg = cfg
            .trace_file(path)
            .map_err(|e| format!("--trace {path}: {e}"))?;
        eprintln!("tracing evaluations to {path}");
    }
    eprintln!(
        "tuning on {} ({}), N={n}, jobs={} ...",
        machine.name,
        context.label(),
        args.jobs
    );
    let out = cfg.tune_source(src).map_err(|e| e.to_string())?;
    println!("baseline (untuned) : not measured (search starts at FKO defaults)");
    println!(
        "FKO defaults       : {:>10} cycles",
        out.result.default_cycles
    );
    println!(
        "iFKO best          : {:>10} cycles  ({:.2}x)",
        out.result.best_cycles,
        out.result.speedup_over_default()
    );
    println!(
        "evaluations        : {} ({} rejected, {} cache hits)",
        out.result.evaluations, out.result.rejected, out.result.cache_hits
    );
    println!("\nwinning parameters:");
    println!(
        "  SV  : {}",
        if out.result.best.simd { "yes" } else { "no" }
    );
    println!("  UR  : {}", out.result.best.unroll);
    println!("  AE  : {}", out.result.best.accum_expand);
    println!("  WNT : {}", if out.result.best.wnt { "yes" } else { "no" });
    for s in &out.result.best.prefetch {
        match s.kind {
            Some(k) => println!("  PF  : array {} -> {}:{}", s.ptr.0, k.abbrev(), s.dist),
            None => println!("  PF  : array {} -> none", s.ptr.0),
        }
    }
    println!("\nper-phase gains:");
    for g in &out.result.gains {
        println!(
            "  {:<7} {:>6.1}%",
            g.phase.label(),
            (g.speedup() - 1.0) * 100.0
        );
    }
    if let Some(path) = &args.metrics {
        ifko::metrics::global()
            .write_snapshot(path)
            .map_err(|e| format!("--metrics {path}: {e}"))?;
        eprintln!("metrics snapshot written to {path}");
    }
    Ok(())
}
