//! `ifko` — the command-line driver of the iterative/empirical compiler.
//!
//! ```text
//! ifko analyze  kernel.hil [--machine p4e|opteron]
//! ifko compile  kernel.hil [--machine M] [--scalar] [--ur N] [--ae N]
//!                          [--wnt] [--pf-dist BYTES] [--no-pf]
//! ifko tune     kernel.hil [--machine M] [--context oc|ic] [--n N]
//!                          [--seed S] [--full] [--jobs N] [--workers N]
//!                          [--trace PATH]
//!                          [--trace-chrome PATH] [--timeseries PATH]
//!                          [--metrics PATH] [--verify-ir] [--no-prune]
//!                          [--strategy line|random|hillclimb|anneal|portfolio]
//!                          [--budget PROBES|WALL] [--warm-start] [--db DIR]
//!                          [--model-prune FRAC] [--remote SOCKET]
//!                          [--chaos SEED[:RATE]] [--max-retries N]
//! ifko lint     kernel.hil [kernel2.hil ...] [--machine M]
//!                          [--format text|json]
//! ifko report   trace.jsonl [trace2.jsonl ...] [--format text|json|md]
//! ifko explain  trace.jsonl [trace2.jsonl ...] [--format text|json|md]
//!                          [--db DIR] [--check-chrome FILE]
//! ifko daemon   <ping|stop|metrics|stats|compact> [--socket PATH]
//! ifko worker   (candidate-evaluation worker on stdin/stdout; spawned
//!                by `tune --workers N`, rarely run by hand)
//! ifko db       <stats|compact|prune> [--rev-missing] [--db DIR]
//!                          [--format text|json]
//! ifko pack     [--db DIR] [--out FILE] [--socket PATH]
//! ifko install  ARTIFACT [--db DIR] [--no-verify]
//! ```
//!
//! `analyze` prints what FKO reports back to the search (paper §2.2.2);
//! `compile` runs the full pipeline at explicit parameters and dumps the
//! generated pseudo-assembly; `tune` runs the empirical line search with
//! differential verification against the untransformed build and reports
//! the winning parameters — for *any* kernel written in the HIL, not only
//! the BLAS suite (`--workers N` dispatches candidate evaluations to a
//! pool of `ifko worker` child processes over a length-prefixed JSON
//! wire protocol, with bit-identical results to in-process evaluation;
//! `--strategy` swaps the search driver, `--budget` caps
//! its probes or wall-clock, and `--warm-start`/`--db` persist winners in
//! the tuned-results database; `--model-prune FRAC` lets the static cost
//! model skip the predicted-worst fraction of every batch before it
//! compiles — 0, the default, keeps predictions trace-only;
//! `--chaos SEED[:RATE]` injects deterministic
//! compile/tester/timer/persistence faults to exercise the retry and
//! recovery paths, with `--max-retries` bounding the per-candidate retry
//! budget); `lint` runs the front end, the tuning-opportunity
//! analysis, and the inter-stage IR verifier over kernel files without
//! tuning anything, and exits nonzero iff an error-severity diagnostic
//! fires; `report` analyzes search traces written by `--trace`
//! (convergence, per-phase attribution, stage time breakdown, cache
//! effectiveness); `explain` answers *why* the winner won: it diffs the
//! winner's hardware counters against the baseline and each probe's
//! nearest neighbor (one parameter changed), prints a per-transform
//! microarchitectural attribution table plus a bottleneck
//! classification, cross-checks the tuned-results database with
//! `--db DIR`, and `--check-chrome FILE` validates a `--trace-chrome`
//! Chrome/Perfetto trace (JSON parses, spans nest).
//!
//! The daemon-facing commands talk to a running `ifkod` over its Unix
//! socket: `tune --remote SOCKET` ships the tune to the daemon (shared
//! eval cache + tuned-results index, so repeats warm-start without
//! touching disk); `daemon <cmd>` is the control plane. `db` inspects,
//! compacts, or prunes (`prune --rev-missing` drops records from repo
//! revisions other than the current checkout's) a sharded tuned-results
//! database in place, and
//! `pack`/`install` move winners between machines as a checksummed,
//! re-verified tune-cache artifact.

use ifko::report::{parse_json, report_files, Json, ReportFormat};
use ifko::runner::Context;
use ifko::strategy::{Budget, StrategySpec, TunedDb};
use ifko::{artifact, SearchOptions, TuneConfig};
use ifko_daemon::client::{Client, TuneRequest};
use ifko_fko::{
    analyze_kernel, lint_analysis, CompileError, CompileOpts, CompileSession, Diagnostic, Severity,
    TransformParams,
};
use ifko_xsim::{asm, opteron, p4e, MachineConfig};
use std::process::ExitCode;

mod args;
use args::Args;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!(
            "usage: ifko <analyze|compile|tune|lint|report|explain|daemon|db|pack|install> [options]"
        );
        return ExitCode::from(2);
    }
    let cmd = argv.remove(0);
    // `report`, `explain`, `lint`, and the database/daemon commands do
    // not take one kernel file: they have their own tiny flag loops
    // instead of the shared `Args`.
    // `ifko worker`: become a candidate-evaluation worker speaking the
    // wire protocol on stdin/stdout until shutdown or EOF (spawned by a
    // `--workers N` dispatcher; see `ifko::worker`).
    if cmd == "worker" {
        return match ifko::worker::serve_stdio() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ifko: worker: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let "daemon" | "db" | "pack" | "install" = cmd.as_str() {
        let r = match cmd.as_str() {
            "daemon" => cmd_daemon(argv),
            "db" => cmd_db(argv),
            "pack" => cmd_pack(argv),
            _ => cmd_install(argv),
        };
        return match r {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ifko: {e}");
                ExitCode::from(2)
            }
        };
    }
    if cmd == "report" {
        return match cmd_report(argv) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ifko: {e}");
                ExitCode::from(2)
            }
        };
    }
    if cmd == "explain" {
        return match cmd_explain(argv) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ifko: {e}");
                ExitCode::from(2)
            }
        };
    }
    if cmd == "lint" {
        return match cmd_lint(argv) {
            Ok(clean) => {
                if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("ifko: {e}");
                ExitCode::from(2)
            }
        };
    }
    let mut args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ifko: {e}");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ifko: cannot read {}: {e}", args.file);
            return ExitCode::from(2);
        }
    };
    let machine = match args.machine.as_str() {
        "p4e" => p4e(),
        "opteron" | "opt" => opteron(),
        other => {
            eprintln!("ifko: unknown machine `{other}` (p4e | opteron)");
            return ExitCode::from(2);
        }
    };

    let r = match cmd.as_str() {
        "analyze" => cmd_analyze(&src, &machine),
        "compile" => cmd_compile(&src, &machine, &args),
        "tune" => cmd_tune(&src, &machine, &mut args),
        other => {
            eprintln!("ifko: unknown command `{other}`");
            return ExitCode::from(2);
        }
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ifko: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_report(argv: Vec<String>) -> Result<(), String> {
    let mut files: Vec<String> = Vec::new();
    let mut format = ReportFormat::Text;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = ReportFormat::parse(&v)
                    .ok_or_else(|| format!("unknown format `{v}` (text | json | md)"))?;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return Err("no trace files given (usage: ifko report TRACE.jsonl... [--format F])".into());
    }
    let out = report_files(&files, format).map_err(|e| e.to_string())?;
    print!("{out}");
    Ok(())
}

/// `ifko explain TRACE.jsonl... [--format F] [--db DIR] [--check-chrome
/// FILE]`: microarchitectural attribution over a search trace — which
/// transform bought which counter deltas, and what the winner is bound
/// by. `--check-chrome` instead validates a `--trace-chrome` output
/// (parses as JSON, spans nest) so CI needs no external JSON tooling.
fn cmd_explain(argv: Vec<String>) -> Result<(), String> {
    let mut files: Vec<String> = Vec::new();
    let mut format = ReportFormat::Text;
    let mut db_dir: Option<String> = None;
    let mut check_chrome: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = ReportFormat::parse(&v)
                    .ok_or_else(|| format!("unknown format `{v}` (text | json | md)"))?;
            }
            "--db" => db_dir = Some(it.next().ok_or("--db needs a value")?),
            "--check-chrome" => {
                check_chrome = Some(it.next().ok_or("--check-chrome needs a value")?)
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => files.push(file.to_string()),
        }
    }
    if let Some(path) = &check_chrome {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let summary = ifko::validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: ok ({} events: {} span slices, {} candidate slices)",
            summary.events, summary.spans, summary.evals
        );
        if files.is_empty() {
            return Ok(());
        }
    }
    if files.is_empty() {
        return Err(
            "no trace files given (usage: ifko explain TRACE.jsonl... [--format F] [--db DIR] [--check-chrome FILE])"
                .into(),
        );
    }
    let db = match &db_dir {
        Some(dir) => Some(TunedDb::open(dir).map_err(|e| format!("--db {dir}: {e}"))?),
        None => None,
    };
    let out = ifko::explain_files(&files, format, db.as_ref()).map_err(|e| e.to_string())?;
    print!("{out}");
    Ok(())
}

/// `ifko lint FILE... [--machine M] [--format text|json]`: front end +
/// tuning-opportunity analysis + full pipeline with the inter-stage IR
/// verifier forced on, under both everything-off and FKO-default
/// parameters. Returns `Ok(true)` when no error-severity diagnostic
/// fired (notes and warnings are advice, not failures).
fn cmd_lint(argv: Vec<String>) -> Result<bool, String> {
    let mut files: Vec<String> = Vec::new();
    let mut machine = p4e();
    let mut json = false;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--machine" | "-m" => {
                let v = it.next().ok_or("--machine needs a value")?;
                machine = match v.as_str() {
                    "p4e" => p4e(),
                    "opteron" | "opt" => opteron(),
                    other => return Err(format!("unknown machine `{other}` (p4e | opteron)")),
                };
            }
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                json = match v.as_str() {
                    "text" => false,
                    "json" => true,
                    other => return Err(format!("unknown format `{other}` (text | json)")),
                };
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return Err("no kernel files given (usage: ifko lint FILE.hil... [--machine M] [--format text|json])".into());
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut out_json = String::from("{\"files\":[");
    for (fi, file) in files.iter().enumerate() {
        let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let diags = lint_file(&src, &machine);
        errors += diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        warnings += diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        if json {
            if fi > 0 {
                out_json.push(',');
            }
            out_json.push_str(&format!(
                "{{\"file\":\"{}\",\"diagnostics\":[",
                ifko_fko::diag::json_escape(file)
            ));
            for (i, d) in diags.iter().enumerate() {
                if i > 0 {
                    out_json.push(',');
                }
                out_json.push_str(&d.to_json());
            }
            out_json.push_str("]}");
        } else {
            for d in &diags {
                println!("{file}: {}", d.render_text());
            }
        }
    }
    if json {
        out_json.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
        println!("{out_json}");
    } else {
        println!(
            "{} file(s) checked: {errors} error(s), {warnings} warning(s)",
            files.len()
        );
    }
    Ok(errors == 0)
}

/// All diagnostics for one kernel source: pipeline errors flattened to
/// the shared `Diagnostic` shape, analysis advice, and anything the IR
/// verifier catches between stages (deduplicated across the two
/// parameter points).
fn lint_file(src: &str, machine: &MachineConfig) -> Vec<Diagnostic> {
    let sess = match CompileSession::from_source(src, machine) {
        Ok(s) => s,
        Err(e) => return e.diagnostics().to_vec(),
    };
    let mut diags = lint_analysis(sess.report());
    // Cost-model advice (A105–A108): static predictions at FKO defaults.
    diags.extend(ifko_fko::lint_costmodel(sess.ir(), sess.report(), machine));
    for params in [
        TransformParams::off(),
        TransformParams::defaults(sess.report(), machine),
    ] {
        if let Err(e) = sess.compile(&params, CompileOpts::verify(true)) {
            // `off()` must always compile; `defaults` can fail only if the
            // compiler itself is broken — both are reportable.
            let is_verify = matches!(e, CompileError::Verify(..));
            for d in e.diagnostics() {
                if !diags.contains(d) {
                    diags.push(d.clone());
                }
            }
            if is_verify {
                break; // the second point would re-report the same bug
            }
        }
    }
    diags
}

fn cmd_analyze(src: &str, machine: &MachineConfig) -> Result<(), String> {
    let (ir, rep) = analyze_kernel(src, machine).map_err(|e| e.to_string())?;
    println!("kernel       : {} ({:?})", ir.name, ir.prec);
    println!("machine      : {}", rep.arch.name);
    for (i, (size, line)) in rep.arch.caches.iter().enumerate() {
        println!("cache L{}     : {} KB, {}B lines", i + 1, size / 1024, line);
    }
    println!("L_e          : {} elements per line", rep.arch.line_elems);
    println!(
        "tuned loop   : {}",
        if rep.has_tuned_loop { "found" } else { "NONE" }
    );
    println!("max unroll   : {}", rep.max_unroll);
    match &rep.vectorizable {
        Ok(()) => println!("vectorizable : yes"),
        Err(b) => println!("vectorizable : no ({b})"),
    }
    println!(
        "AE candidates: {}",
        if rep.ae_candidates.is_empty() {
            "none".to_string()
        } else {
            format!("{} accumulator(s)", rep.ae_candidates.len())
        }
    );
    let pf: Vec<String> = rep
        .pf_candidates
        .iter()
        .map(|p| ir.ptrs[p.0 as usize].name.clone())
        .collect();
    println!(
        "PF candidates: {}",
        if pf.is_empty() {
            "none".into()
        } else {
            pf.join(", ")
        }
    );
    let wnt: Vec<String> = rep
        .wnt_candidates
        .iter()
        .map(|p| ir.ptrs[p.0 as usize].name.clone())
        .collect();
    println!(
        "WNT targets  : {}",
        if wnt.is_empty() {
            "none".into()
        } else {
            wnt.join(", ")
        }
    );
    println!("\nscalars (vreg: role, sets/uses):");
    for s in &rep.scalars {
        println!("  v{:<4} {:?}  {}/{}", s.vreg, s.role, s.sets, s.uses);
    }
    Ok(())
}

fn cmd_compile(src: &str, machine: &MachineConfig, args: &Args) -> Result<(), String> {
    let sess = CompileSession::from_source(src, machine).map_err(|e| e.to_string())?;
    let rep = sess.report();
    let mut p = TransformParams::defaults(rep, machine);
    if args.scalar {
        p.simd = false;
    }
    if let Some(ur) = args.ur {
        p.unroll = ur;
    }
    if let Some(ae) = args.ae {
        p.accum_expand = ae;
    }
    if args.wnt {
        p.wnt = true;
    }
    if args.no_pf {
        p.prefetch.clear();
    } else if let Some(d) = args.pf_dist {
        for s in &mut p.prefetch {
            s.dist = d;
        }
    }
    let compiled = sess
        .compile(&p, CompileOpts::default())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "# {} for {}: {} instructions, frame {} bytes",
        compiled.name,
        machine.name,
        compiled.program.len(),
        compiled.frame_bytes
    );
    print!("{}", asm::disassemble(&compiled.program));
    Ok(())
}

fn cmd_tune(src: &str, machine: &MachineConfig, args: &mut Args) -> Result<(), String> {
    if let Some(socket) = args.remote.clone() {
        return cmd_tune_remote(src, args, &socket);
    }
    let context = match args.context.as_str() {
        "oc" => Context::OutOfCache,
        "ic" => Context::InL2,
        other => return Err(format!("unknown context `{other}` (oc | ic)")),
    };
    let n = args.n.unwrap_or(match context {
        Context::OutOfCache => 40_000,
        Context::InL2 => 1024,
    });
    let opts = if args.full {
        SearchOptions::default()
    } else {
        SearchOptions::quick()
    };
    let mut cfg = TuneConfig::paper()
        .machine(machine.clone())
        .context(context)
        .n(n)
        .seed(args.seed)
        .search(opts)
        .verify_ir(args.verify_ir)
        .prune(!args.no_prune)
        .profile_pipeline(args.profile_pipeline)
        .jobs(args.jobs);
    if args.workers > 0 {
        // Workers are this same binary re-invoked as `ifko worker`, so
        // the pool works from any build/install location.
        let exe = std::env::current_exe().map_err(|e| format!("--workers: {e}"))?;
        cfg = cfg
            .workers(args.workers)
            .worker_launcher(ifko::worker::WorkerLauncher::new(exe).arg("worker"));
        eprintln!(
            "worker pool: dispatching evaluations to {} ifko worker processes",
            args.workers
        );
    }
    let strategy = match &args.strategy {
        Some(s) => StrategySpec::parse(s).ok_or_else(|| {
            format!("unknown strategy `{s}` (line | random | hillclimb | anneal | portfolio)")
        })?,
        None => StrategySpec::Line,
    };
    cfg = cfg.strategy(strategy);
    if let Some(b) = &args.budget {
        cfg = cfg.budget(Budget::parse(b).map_err(|e| format!("--budget: {e}"))?);
    }
    if let Some(spec) = &args.chaos {
        let plan = ifko::FaultPlan::parse(spec).map_err(|e| format!("--chaos: {e}"))?;
        eprintln!(
            "chaos fault injection on: seed {:#x}, rate {}",
            plan.seed, plan.compile
        );
        cfg = cfg.faults(plan);
    }
    if let Some(r) = args.max_retries {
        cfg = cfg.max_retries(r);
    }
    if let Some(frac) = args.model_prune {
        cfg = cfg.model_prune(frac);
        eprintln!(
            "cost-model pruning on: dropping worst {:.0}% of each batch by predicted cycles",
            frac * 100.0
        );
    }
    // `--db DIR` attaches an explicit database; `--warm-start` alone uses
    // the conventional `results/db`.
    if args.db.is_some() || args.warm_start {
        let dir = args.db.clone().unwrap_or_else(|| "results/db".to_string());
        cfg = cfg.tuned_db(&dir).map_err(|e| format!("--db {dir}: {e}"))?;
        eprintln!("tuned-results database: {dir} (sharded, shard-*.jsonl)");
    }
    if let Some(path) = &args.trace {
        cfg = cfg
            .trace_file(path)
            .map_err(|e| format!("--trace {path}: {e}"))?;
        eprintln!("tracing evaluations to {path}");
    }
    // The Chrome sink handle is kept so the pipeline stage profile can be
    // appended as its own track after the tune finishes.
    let chrome = match &args.trace_chrome {
        Some(path) => {
            let sink = ifko::ChromeTraceSink::create(path)
                .map_err(|e| format!("--trace-chrome {path}: {e}"))?;
            cfg = cfg.trace(sink.clone());
            eprintln!("rendering Chrome/Perfetto trace to {path}");
            Some(sink)
        }
        None => None,
    };
    let timeseries = match &args.timeseries {
        Some(path) => {
            let ts = ifko::metrics::global()
                .timeseries(path, std::time::Duration::from_millis(50))
                .map_err(|e| format!("--timeseries {path}: {e}"))?;
            eprintln!("appending metrics timeseries to {path}");
            Some(ts)
        }
        None => None,
    };
    eprintln!(
        "tuning on {} ({}), N={n}, jobs={}, strategy={} ...",
        machine.name,
        context.label(),
        args.jobs,
        strategy.name()
    );
    let out = cfg.tune_source(src).map_err(|e| e.to_string())?;
    if let Some(ts) = timeseries {
        ts.stop();
    }
    if let Some(sink) = &chrome {
        sink.add_profile(&out.pipeline_profile);
        sink.write_out().map_err(|e| {
            format!(
                "--trace-chrome {}: {e}",
                args.trace_chrome.as_deref().unwrap_or("")
            )
        })?;
    }
    println!("baseline (untuned) : not measured (search starts at FKO defaults)");
    println!(
        "FKO defaults       : {:>10} cycles",
        out.result.default_cycles
    );
    println!(
        "iFKO best          : {:>10} cycles  ({:.2}x)",
        out.result.best_cycles,
        out.result.speedup_over_default()
    );
    println!(
        "evaluations        : {} ({} rejected, {} cache hits, {} pruned)",
        out.result.evaluations, out.result.rejected, out.result.cache_hits, out.result.pruned
    );
    if out.result.model_pruned > 0 {
        println!(
            "cost-model pruning : {} candidates skipped by predicted rank",
            out.result.model_pruned
        );
    }
    if out.result.retries + out.result.faults + out.result.outliers + out.result.failed > 0 {
        println!(
            "fault handling     : {} faults injected, {} retries, {} outliers rejected, {} failed",
            out.result.faults, out.result.retries, out.result.outliers, out.result.failed
        );
    }
    println!(
        "strategy           : {} (winner found by: {})",
        out.result.strategy, out.result.winner_strategy
    );
    println!("\nwinning parameters:");
    println!(
        "  SV  : {}",
        if out.result.best.simd { "yes" } else { "no" }
    );
    println!("  UR  : {}", out.result.best.unroll);
    println!("  AE  : {}", out.result.best.accum_expand);
    println!("  WNT : {}", if out.result.best.wnt { "yes" } else { "no" });
    for s in &out.result.best.prefetch {
        match s.kind {
            Some(k) => println!("  PF  : array {} -> {}:{}", s.ptr.0, k.abbrev(), s.dist),
            None => println!("  PF  : array {} -> none", s.ptr.0),
        }
    }
    println!("\nper-phase gains:");
    for g in &out.result.gains {
        println!(
            "  {:<7} {:>6.1}%",
            g.phase.label(),
            (g.speedup() - 1.0) * 100.0
        );
    }
    println!("\nwinner feature vector (size-normalized rates):");
    for (name, v) in ifko_xsim::FeatureVector::NAMES
        .iter()
        .zip(&out.features.values)
    {
        println!("  {name:<24} {v:>12.6}");
    }
    if !out.pipeline_profile.is_empty() {
        println!("\npipeline stage profile (wall time per candidate compile):");
        println!(
            "  {:<10} {:>7} {:>9} {:>11} {:>11}",
            "stage", "count", "min_us", "median_us", "total_us"
        );
        for st in &out.pipeline_profile {
            println!(
                "  {:<10} {:>7} {:>9} {:>11} {:>11}",
                st.stage, st.count, st.min_us, st.median_us, st.total_us
            );
        }
    }
    if let Some(path) = &args.metrics {
        ifko::metrics::global()
            .write_snapshot(path)
            .map_err(|e| format!("--metrics {path}: {e}"))?;
        eprintln!("metrics snapshot written to {path}");
    }
    Ok(())
}

/// `ifko tune FILE --remote SOCKET`: ship the tune to a running `ifkod`
/// instead of searching in-process. The daemon holds the shared eval
/// cache and tuned-results index, so identical requests coalesce and
/// repeats short-circuit on verified warm starts.
fn cmd_tune_remote(src: &str, args: &Args, socket: &str) -> Result<(), String> {
    if args.trace.is_some()
        || args.trace_chrome.is_some()
        || args.timeseries.is_some()
        || args.chaos.is_some()
    {
        eprintln!("note: trace/chaos flags are local-only and ignored with --remote");
    }
    let mut client = Client::connect(socket)
        .map_err(|e| format!("--remote {socket}: {e} (is ifkod running?)"))?;
    eprintln!("tuning remotely via {socket} ...");
    let v = client.tune(&TuneRequest {
        kernel: None,
        src: Some(src.to_string()),
        machine: args.machine.clone(),
        context: args.context.clone(),
        n: args.n,
        seed: Some(args.seed),
        full: args.full,
        strategy: args.strategy.clone(),
        budget: args.budget.clone(),
    })?;
    let num = |k: &str| v.get(k).and_then(|j| j.as_u64()).unwrap_or(0);
    let txt = |k: &str| v.get(k).and_then(|j| j.as_str()).unwrap_or("?").to_string();
    let default_cycles = num("default_cycles");
    let best_cycles = num("best_cycles");
    let speedup = if best_cycles > 0 {
        default_cycles as f64 / best_cycles as f64
    } else {
        0.0
    };
    println!("daemon             : {socket} (machine {})", txt("machine"));
    println!("FKO defaults       : {default_cycles:>10} cycles");
    println!("iFKO best          : {best_cycles:>10} cycles  ({speedup:.2}x)");
    println!(
        "evaluations        : {} ({} cache hits, {} pruned)",
        num("evaluations"),
        num("cache_hits"),
        num("pruned")
    );
    println!(
        "strategy           : {} (winner found by: {})",
        txt("strategy"),
        txt("winner_strategy")
    );
    println!(
        "warm start         : {}",
        if v.get("warm").and_then(|j| j.as_bool()) == Some(true) {
            "yes (answered from the daemon's tuned-results index)"
        } else {
            "no (cold search; winner now cached for the next client)"
        }
    );
    if let Some(p) = v.get("params") {
        let pnum = |k: &str| p.get(k).and_then(|j| j.as_u64()).unwrap_or(0);
        let flag = |k: &str| {
            if p.get(k).and_then(|j| j.as_bool()) == Some(true) {
                "yes"
            } else {
                "no"
            }
        };
        println!("\nwinning parameters:");
        println!("  SV  : {}", flag("simd"));
        println!("  UR  : {}", pnum("unroll"));
        println!("  AE  : {}", pnum("ae"));
        println!("  WNT : {}", flag("wnt"));
        if let Some(Json::Arr(pf)) = p.get("pf") {
            for s in pf {
                let ptr = s.get("ptr").and_then(|j| j.as_u64()).unwrap_or(0);
                match s.get("kind").and_then(|j| j.as_str()) {
                    Some(k) => println!(
                        "  PF  : array {ptr} -> {k}:{}",
                        s.get("dist").and_then(|j| j.as_u64()).unwrap_or(0)
                    ),
                    None => println!("  PF  : array {ptr} -> none"),
                }
            }
        }
    }
    Ok(())
}

/// `ifko daemon <ping|stop|metrics|stats|compact> [--socket PATH]`: the
/// control plane for a running `ifkod`.
fn cmd_daemon(argv: Vec<String>) -> Result<(), String> {
    let mut socket = "results/ifkod.sock".to_string();
    let mut sub: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--socket" | "-s" => socket = it.next().ok_or("--socket needs a value")?,
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            word if sub.is_none() => sub = Some(word.to_string()),
            word => return Err(format!("unexpected argument `{word}`")),
        }
    }
    let sub = sub.ok_or("usage: ifko daemon <ping|stop|metrics|stats|compact> [--socket PATH]")?;
    let mut client =
        Client::connect(&socket).map_err(|e| format!("{socket}: {e} (is ifkod running?)"))?;
    match sub.as_str() {
        "ping" => {
            client.ping()?;
            println!("ifkod at {socket}: alive");
        }
        "stop" => {
            client.shutdown()?;
            println!("ifkod at {socket}: shutting down");
        }
        "metrics" => print!("{}", client.metrics()?),
        "stats" => print_db_stats(&client.stats()?),
        "compact" => {
            let stats = client.compact()?;
            println!("compacted all shards");
            print_db_stats(&stats);
        }
        other => {
            return Err(format!(
                "unknown daemon command `{other}` (ping | stop | metrics | stats | compact)"
            ))
        }
    }
    Ok(())
}

/// `ifko db <stats|compact|prune> [--rev-missing] [--db DIR]
/// [--format text|json]`: inspect, compact, or prune a sharded
/// tuned-results database in place, no daemon needed. `prune
/// --rev-missing` drops every record stored under a repo revision other
/// than the current checkout's — stale revisions can never answer an
/// exact warm-start lookup, so they only cost space.
fn cmd_db(argv: Vec<String>) -> Result<(), String> {
    let mut dir = "results/db".to_string();
    let mut json = false;
    let mut rev_missing = false;
    let mut sub: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--db" => dir = it.next().ok_or("--db needs a value")?,
            "--rev-missing" => rev_missing = true,
            "--format" | "-f" => {
                json = match it.next().ok_or("--format needs a value")?.as_str() {
                    "text" => false,
                    "json" => true,
                    other => return Err(format!("unknown format `{other}` (text | json)")),
                }
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            word if sub.is_none() => sub = Some(word.to_string()),
            word => return Err(format!("unexpected argument `{word}`")),
        }
    }
    let sub = sub.ok_or(
        "usage: ifko db <stats|compact|prune> [--rev-missing] [--db DIR] [--format text|json]",
    )?;
    if rev_missing && sub != "prune" {
        return Err("--rev-missing only applies to `ifko db prune`".into());
    }
    let db = TunedDb::open(&dir).map_err(|e| format!("--db {dir}: {e}"))?;
    let mut pruned = 0usize;
    let stats = match sub.as_str() {
        "stats" => db.stats(),
        "compact" => db.compact(),
        "prune" => {
            if !rev_missing {
                return Err("ifko db prune requires a criterion: --rev-missing".into());
            }
            pruned = db.prune_missing_rev();
            db.stats()
        }
        other => {
            return Err(format!(
                "unknown db command `{other}` (stats | compact | prune)"
            ))
        }
    };
    if json {
        if sub == "prune" {
            println!("{{\"pruned\":{pruned},\"stats\":{}}}", stats.to_json());
        } else {
            println!("{}", stats.to_json());
        }
    } else {
        println!("tuned-results database: {dir}");
        if sub == "compact" {
            println!("compacted all shards");
        }
        if sub == "prune" {
            println!(
                "pruned {pruned} record(s) from revisions other than {}",
                db.rev()
            );
        }
        let rendered = parse_json(&stats.to_json()).ok_or("stats rendering failed")?;
        print_db_stats(&rendered);
    }
    Ok(())
}

/// Text rendering of a `DbStats` JSON object — shared by `ifko db` and
/// `ifko daemon stats|compact`.
fn print_db_stats(v: &Json) {
    let num = |k: &str| v.get(k).and_then(|j| j.as_u64()).unwrap_or(0);
    let (live, lines, dead) = (num("live"), num("file_lines"), num("dead"));
    let ratio = if lines > 0 {
        dead as f64 / lines as f64 * 100.0
    } else {
        0.0
    };
    println!("live records : {live}");
    println!("file lines   : {lines}");
    println!("dead records : {dead} ({ratio:.1}% of lines)");
    println!("bytes        : {}", num("bytes"));
    if let Some(Json::Arr(shards)) = v.get("shards") {
        for s in shards {
            let f = |k: &str| s.get(k).and_then(|j| j.as_u64()).unwrap_or(0);
            println!(
                "  shard {} : {:>6} live / {:>6} lines / {:>9} bytes",
                f("shard"),
                f("live"),
                f("file_lines"),
                f("bytes")
            );
        }
    }
}

/// `ifko pack [--db DIR] [--out FILE] [--socket PATH]`: export a
/// tuned-results database as a self-describing, checksummed tune-cache
/// artifact — from the database directory, or from a live daemon's
/// in-memory index with `--socket`.
fn cmd_pack(argv: Vec<String>) -> Result<(), String> {
    let mut dir = "results/db".to_string();
    let mut out: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--db" => dir = it.next().ok_or("--db needs a value")?,
            "--out" | "-o" => out = Some(it.next().ok_or("--out needs a value")?),
            "--socket" | "-s" => socket = Some(it.next().ok_or("--socket needs a value")?),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let text = match &socket {
        Some(sock) => Client::connect(sock)
            .map_err(|e| format!("{sock}: {e} (is ifkod running?)"))?
            .pack()?,
        None => artifact::pack(&TunedDb::open(&dir).map_err(|e| format!("--db {dir}: {e}"))?),
    };
    let records = artifact::parse(&text)?.records.len();
    match &out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("--out {path}: {e}"))?;
            eprintln!("packed {records} record(s) to {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// `ifko install ARTIFACT [--db DIR] [--no-verify]`: import a tune-cache
/// artifact into a database. Every record is re-verified on this build
/// before it is trusted (bit-exact differential check against the
/// untransformed kernel); records that fail are rejected, records this
/// build cannot check (foreign machine, unknown kernel) install anyway
/// because the tune-time warm path re-verifies before use.
fn cmd_install(argv: Vec<String>) -> Result<(), String> {
    let mut dir = "results/db".to_string();
    let mut verify = true;
    let mut file: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--db" => dir = it.next().ok_or("--db needs a value")?,
            "--no-verify" => verify = false,
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            word if file.is_none() => file = Some(word.to_string()),
            word => return Err(format!("unexpected argument `{word}`")),
        }
    }
    let file = file.ok_or("usage: ifko install ARTIFACT [--db DIR] [--no-verify]")?;
    let text = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let db = TunedDb::open(&dir).map_err(|e| format!("--db {dir}: {e}"))?;
    let report = artifact::install(&text, &db, verify)?;
    for (key, why) in &report.rejected {
        eprintln!("rejected {key}: {why}");
    }
    println!(
        "installed {} record(s) into {dir} ({} verified, {} unverifiable, {} rejected)",
        report.installed,
        report.verified,
        report.unverified,
        report.rejected.len()
    );
    if report.installed == 0 && !report.rejected.is_empty() {
        return Err("every record was rejected by re-verification".to_string());
    }
    Ok(())
}
