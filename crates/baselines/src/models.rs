//! Model compilers: gcc-like, icc-like, and icc-with-profiling.
//!
//! Each model is a fixed optimization policy applied through the common
//! backend. The policies encode the behaviours the paper attributes to
//! each compiler (see crate docs).

use ifko_blas::hil_src::hil_source;
use ifko_blas::Kernel;
use ifko_fko::ir::PrefKind;
use ifko_fko::{
    CompileError, CompileOpts, CompileSession, CompiledKernel, PrefSpec, TransformParams,
};
use ifko_xsim::MachineConfig;

/// Loop-header form of the source given to the icc model. The paper found
/// icc refused to vectorize ATLAS's `for(i=N; i; i--)` form and rewrote
/// the sources to `for(i=0; i<N; i++)` before timing; `Unfriendly`
/// reproduces the refusal for the ablation bench.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopForm {
    Friendly,
    Unfriendly,
}

/// gcc 3.x `-O3 -funroll-all-loops`: no auto-vectorization (2005-era gcc),
/// moderate unrolling, decent scalar codegen, no prefetch insertion, no
/// non-temporal stores.
pub fn compile_gcc(kernel: Kernel, mach: &MachineConfig) -> Result<CompiledKernel, CompileError> {
    let src = hil_source(kernel.op, kernel.prec);
    let sess = CompileSession::from_source(&src, mach)?;
    let mut p = TransformParams::off();
    p.simd = false;
    p.unroll = 4; // -funroll-all-loops
    p.accum_expand = 1;
    p.wnt = false;
    p.prefetch = vec![];
    sess.compile(&p, CompileOpts::default())
}

/// icc 8.0 `-O3`: auto-vectorizes friendly loops, inserts its own
/// (untuned, one-size-fits-all) software prefetch, unrolls lightly, and
/// splits vector reductions over two accumulators. No WNT without
/// profiling.
pub fn compile_icc(
    kernel: Kernel,
    mach: &MachineConfig,
    form: LoopForm,
) -> Result<CompiledKernel, CompileError> {
    let src = hil_source(kernel.op, kernel.prec);
    let sess = CompileSession::from_source(&src, mach)?;
    let rep = sess.report();
    let mut p = TransformParams::off();
    p.simd = form == LoopForm::Friendly && rep.vectorizable.is_ok();
    p.unroll = 2;
    // icc's reduction splitting: two partial sums when it vectorizes one.
    p.accum_expand = if p.simd && !rep.ae_candidates.is_empty() {
        2
    } else {
        1
    };
    // Fixed heuristic prefetch: nta, 8 lines ahead, every candidate array.
    let line = mach.prefetch_line() as i64;
    p.prefetch = rep
        .pf_candidates
        .iter()
        .map(|ptr| PrefSpec {
            ptr: *ptr,
            kind: Some(PrefKind::Nta),
            dist: 6 * line,
        })
        .collect();
    p.wnt = false;
    sess.compile(&p, CompileOpts::default())
}

/// icc with profile feedback for problem size `profile_n`: everything icc
/// does, slightly deeper unrolling, and — the paper's key observation —
/// **non-temporal writes applied blindly whenever the profiled working
/// set does not fit in cache**, without checking whether the written
/// operand is also read ("icc's profiling detects that the loop is long
/// enough for cache retention not to be an issue, and blindly applies
/// WNT").
pub fn compile_icc_prof(
    kernel: Kernel,
    mach: &MachineConfig,
    profile_n: usize,
) -> Result<CompiledKernel, CompileError> {
    let src = hil_source(kernel.op, kernel.prec);
    let sess = CompileSession::from_source(&src, mach)?;
    let rep = sess.report();
    let mut p = TransformParams::off();
    p.simd = rep.vectorizable.is_ok();
    p.unroll = 4;
    p.accum_expand = if p.simd && !rep.ae_candidates.is_empty() {
        2
    } else {
        1
    };
    let line = mach.prefetch_line() as i64;
    p.prefetch = rep
        .pf_candidates
        .iter()
        .map(|ptr| PrefSpec {
            ptr: *ptr,
            kind: Some(PrefKind::Nta),
            dist: 6 * line,
        })
        .collect();
    // Blind WNT decision from the profile: working set vs L2 capacity.
    let bytes = profile_n as u64 * kernel.prec.bytes() * kernel.op.n_vectors() as u64;
    p.wnt = !rep.wnt_candidates.is_empty() && bytes > mach.l2.size;
    if p.wnt {
        // Streaming stores imply no prefetch of the stored array (icc does
        // not prefetch a stream it writes with movnt).
        p.prefetch.retain(|s| !rep.wnt_candidates.contains(&s.ptr));
    }
    sess.compile(&p, CompileOpts::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifko::runner::{run_once, Context, KernelArgs};
    use ifko::verify;
    use ifko_blas::ops::BlasOp;
    use ifko_blas::Workload;
    use ifko_xsim::isa::Prec;
    use ifko_xsim::{opteron, p4e};

    fn check_method(
        compile: impl Fn(Kernel, &MachineConfig) -> Result<CompiledKernel, CompileError>,
    ) {
        let mach = p4e();
        let w = Workload::generate(500, 9);
        for k in ifko_blas::ALL_KERNELS {
            let c = compile(k, &mach).unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            let out = run_once(
                &c,
                &KernelArgs {
                    kernel: k,
                    workload: &w,
                    context: Context::OutOfCache,
                },
                &mach,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            verify(k, &w, &out).unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        }
    }

    #[test]
    fn gcc_model_correct_for_all_kernels() {
        check_method(compile_gcc);
    }

    #[test]
    fn icc_model_correct_for_all_kernels() {
        check_method(|k, m| compile_icc(k, m, LoopForm::Friendly));
    }

    #[test]
    fn icc_prof_model_correct_for_all_kernels() {
        check_method(|k, m| compile_icc_prof(k, m, 80_000));
    }

    #[test]
    fn icc_beats_gcc_on_vectorizable_kernel() {
        let mach = p4e();
        let k = Kernel {
            op: BlasOp::Dot,
            prec: Prec::S,
        };
        let w = Workload::generate(4096, 4);
        let timer = ifko::Timer::exact();
        let args = KernelArgs {
            kernel: k,
            workload: &w,
            context: Context::InL2,
        };
        let gcc = timer
            .time(&compile_gcc(k, &mach).unwrap(), &args, &mach)
            .unwrap();
        let icc = timer
            .time(
                &compile_icc(k, &mach, LoopForm::Friendly).unwrap(),
                &args,
                &mach,
            )
            .unwrap();
        assert!(icc < gcc, "icc ({icc}) should beat gcc ({gcc}) on sdot");
    }

    #[test]
    fn unfriendly_loop_form_blocks_icc_vectorization() {
        let mach = p4e();
        let k = Kernel {
            op: BlasOp::Dot,
            prec: Prec::S,
        };
        let w = Workload::generate(2048, 4);
        let timer = ifko::Timer::exact();
        let args = KernelArgs {
            kernel: k,
            workload: &w,
            context: Context::InL2,
        };
        let friendly = timer
            .time(
                &compile_icc(k, &mach, LoopForm::Friendly).unwrap(),
                &args,
                &mach,
            )
            .unwrap();
        let unfriendly = timer
            .time(
                &compile_icc(k, &mach, LoopForm::Unfriendly).unwrap(),
                &args,
                &mach,
            )
            .unwrap();
        assert!(
            friendly < unfriendly,
            "vectorized ({friendly}) must beat unvectorized ({unfriendly}) in cache"
        );
    }

    #[test]
    fn icc_prof_collapses_on_opteron_swap_but_not_p4e() {
        // The paper's Figure 3 pathology: profiled WNT on read-write
        // operands is catastrophic on the Opteron and harmless on the P4E.
        let n = 80_000; // paper size: dswap working set 1.28 MB > 1 MB L2
        let w = Workload::generate(n, 5);
        let k = Kernel {
            op: BlasOp::Swap,
            prec: Prec::D,
        };
        let timer = ifko::Timer::exact();
        let args = KernelArgs {
            kernel: k,
            workload: &w,
            context: Context::OutOfCache,
        };

        let mach = opteron();
        let prof = timer
            .time(&compile_icc_prof(k, &mach, n).unwrap(), &args, &mach)
            .unwrap();
        let plain = timer
            .time(
                &compile_icc(k, &mach, LoopForm::Friendly).unwrap(),
                &args,
                &mach,
            )
            .unwrap();
        assert!(
            prof > plain * 2,
            "Opteron dswap: icc+prof ({prof}) must be many times slower than icc ({plain})"
        );

        let mach = p4e();
        let prof4 = timer
            .time(&compile_icc_prof(k, &mach, n).unwrap(), &args, &mach)
            .unwrap();
        let plain4 = timer
            .time(
                &compile_icc(k, &mach, LoopForm::Friendly).unwrap(),
                &args,
                &mach,
            )
            .unwrap();
        // On the P4E, NT writes to read-write operands cost moderately
        // (they forgo L2 write absorption) but do not collapse: the
        // pathology is Opteron-specific.
        assert!(
            prof4 < plain4 * 2,
            "P4E dswap: icc+prof ({prof4}) must not collapse vs icc ({plain4})"
        );
        assert!(
            (prof as f64 / plain as f64) > 1.5 * (prof4 as f64 / plain4 as f64),
            "the NT penalty must be far worse on Opteron than P4E"
        );
    }

    #[test]
    fn icc_prof_skips_wnt_for_small_profiles() {
        // In-L2 sizes: no WNT, so icc+prof behaves like icc (paper Fig 4).
        let mach = opteron();
        let k = Kernel {
            op: BlasOp::Swap,
            prec: Prec::D,
        };
        let w = Workload::generate(1024, 5);
        let timer = ifko::Timer::exact();
        let args = KernelArgs {
            kernel: k,
            workload: &w,
            context: Context::InL2,
        };
        let prof = timer
            .time(&compile_icc_prof(k, &mach, 1024).unwrap(), &args, &mach)
            .unwrap();
        let plain = timer
            .time(
                &compile_icc(k, &mach, LoopForm::Friendly).unwrap(),
                &args,
                &mach,
            )
            .unwrap();
        assert!(
            prof <= plain * 11 / 10,
            "small-N profile must not trigger WNT"
        );
    }
}
