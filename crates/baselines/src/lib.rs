//! # ifko-baselines — the comparison points of the paper's figures
//!
//! The paper's Figures 2–4 compare six tuning methodologies per kernel:
//! `gcc+ref`, `icc+ref`, `icc+prof`, `ATLAS` (hand-tuned kernels selected
//! by ATLAS's own empirical search), `FKO` (static defaults) and `ifko`
//! (full empirical search). This crate provides the first four.
//!
//! **Substitution note** (see DESIGN.md): the real gcc/icc binaries and
//! ATLAS's hand-written assembly are not available, so each baseline is a
//! *model* defined by the set of optimizations it applies — which is what
//! distinguishes the methods in the paper — all emitting code for the same
//! simulated machine through the same backend, so comparisons are
//! apples-to-apples:
//!
//! * [`models::compile_gcc`] — scalar code, moderate unrolling
//!   (`-funroll-all-loops`), no software prefetch, no non-temporal stores;
//! * [`models::compile_icc`] — vectorizes loops in the "friendly" form
//!   (the paper had to rewrite ATLAS's loop headers before icc would
//!   vectorize them — the unfriendly form is available for that ablation),
//!   fixed untuned prefetch heuristic;
//! * [`models::compile_icc_prof`] — icc plus profile knowledge of N:
//!   applies non-temporal writes *blindly* whenever the profiled working
//!   set exceeds the cache, reproducing the paper's observation that
//!   icc+prof is "many times slower than icc+ref" on Opteron swap/axpy
//!   because the Opteron penalizes NT stores to read-write operands;
//! * [`atlas`] — a library of hand-tuned kernel variants per operation
//!   (including the SIMD-vectorized `iamax` and the block-fetch `dcopy`
//!   that beat iFKO in the paper) plus ATLAS-style empirical selection of
//!   the best variant by timing.

pub mod asm_kernels;
pub mod atlas;
pub mod models;

pub use atlas::{atlas_best, AtlasChoice};
pub use models::{compile_gcc, compile_icc, compile_icc_prof, LoopForm};

/// The six methodologies of Figures 2-4, in the paper's legend order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    GccRef,
    IccRef,
    IccProf,
    Atlas,
    Fko,
    Ifko,
}

impl Method {
    pub fn label(self) -> &'static str {
        match self {
            Method::GccRef => "gcc+ref",
            Method::IccRef => "icc+ref",
            Method::IccProf => "icc+prof",
            Method::Atlas => "ATLAS",
            Method::Fko => "FKO",
            Method::Ifko => "ifko",
        }
    }
    pub fn all() -> [Method; 6] {
        [
            Method::GccRef,
            Method::IccRef,
            Method::IccProf,
            Method::Atlas,
            Method::Fko,
            Method::Ifko,
        ]
    }
}
