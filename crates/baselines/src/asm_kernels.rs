//! Hand-written assembly kernels — the ATLAS `*` variants.
//!
//! These encode the two hand-tuning techniques the paper singles out as
//! beyond FKO's current reach:
//!
//! * a **SIMD-vectorized `iamax`** ("the hand-tuned assembly vectorizes
//!   the loop, but neither ifko nor icc can do so automatically"): the
//!   vector loop compares each group against the broadcast running max
//!   with `cmpps`/`movmskps` and branches to a scalar rescan only when a
//!   lane exceeds it — rare, so the branch predicts well;
//! * a **block-fetch `copy`** (Wall, "Using Block Prefetch for Optimized
//!   Memory Performance", AMD): reads touch one element per cache line of
//!   the next block back-to-back (maximizing memory-level parallelism and
//!   avoiding read/write interleaving), then the block is copied out of
//!   cache with non-temporal stores.

use ifko_fko::{ArgSlot, CompiledKernel, RetSlot};
use ifko_xsim::isa::Inst::*;
use ifko_xsim::isa::{Addr, Cond, FReg, IReg, Inst, Prec, PrefKind, RegOrMem};
use ifko_xsim::Asm;

const X: IReg = IReg(0);

/// Hand-vectorized `iamax` for either precision.
///
/// Register plan: `r0`=X (moving), `r1`=N countdown, `r2`=elements
/// consumed, `r3`=imax, `r4`=lane mask; `x7`=broadcast running max,
/// `x5`=scalar running max, `x0/x1/x2` temps.
pub fn iamax_vectorized(prec: Prec) -> CompiledKernel {
    let vl = prec.veclen() as i64;
    let eb = prec.bytes() as i64;
    let n = IReg(1);
    let idx = IReg(2);
    let imax = IReg(3);
    let mask = IReg(4);
    let vmax = FReg(7);
    let smax = FReg(5);

    // One cache line (64 B = 4 vector groups) per main-loop iteration,
    // with a per-group rarely-taken branch to a cold rescan block.
    const GROUPS: i64 = 4;
    let step = GROUPS * vl;

    let mut a = Asm::new();
    let rem = a.new_label();
    let done = a.new_label();
    let rskip = a.new_label();
    let updates: Vec<_> = (0..GROUPS).map(|_| a.new_label()).collect();
    let backs: Vec<_> = (0..GROUPS).map(|_| a.new_label()).collect();

    a.push(IMovImm(imax, 0));
    a.push(IMovImm(idx, 0));
    a.push(FLdImm(smax, -1.0, prec));
    a.push(VBcast(vmax, smax, prec));
    a.push(ICmpImm(n, step));
    a.push(Jcc(Cond::Lt, rem));

    // ---- vector main loop ----
    let top = a.here();
    a.push(Inst::Prefetch(Addr::base_disp(X, 384), PrefKind::Nta));
    for g in 0..GROUPS {
        a.push(VLd(FReg(0), Addr::base_disp(X, g * 16), prec, true));
        a.push(VAbs(FReg(0), prec));
        a.push(VMov(FReg(1), FReg(0)));
        a.push(VCmpGt(FReg(1), RegOrMem::Reg(vmax), prec));
        a.push(VMovMsk(mask, FReg(1), prec));
        a.push(Jcc(Cond::Ne, updates[g as usize]));
        a.bind(backs[g as usize]);
    }
    a.push(IAddImm(X, 64));
    a.push(IAddImm(idx, step));
    a.push(ISubImm(n, step));
    a.push(ICmpImm(n, step));
    a.push(Jcc(Cond::Ge, top));

    // ---- scalar remainder ----
    a.bind(rem);
    a.push(ICmpImm(n, 0));
    a.push(Jcc(Cond::Le, done));
    let rtop = a.here();
    a.push(FLd(FReg(2), Addr::base(X), prec));
    a.push(FAbs(FReg(2), prec));
    a.push(FCmp(FReg(2), RegOrMem::Reg(smax), prec));
    a.push(Jcc(Cond::Le, rskip));
    a.push(FMov(smax, FReg(2), prec));
    a.push(IMov(imax, idx));
    a.bind(rskip);
    a.push(IAddImm(X, eb));
    a.push(IAddImm(idx, 1));
    a.push(IDec(n));
    a.push(Jcc(Cond::Gt, rtop));

    a.bind(done);
    a.push(IMov(IReg(0), imax));
    a.push(Halt);

    // ---- cold update blocks: rescan one group scalar-wise ----
    for g in 0..GROUPS {
        a.bind(updates[g as usize]);
        for lane in 0..vl {
            let skip = a.new_label();
            a.push(FLd(FReg(2), Addr::base_disp(X, g * 16 + lane * eb), prec));
            a.push(FAbs(FReg(2), prec));
            a.push(FCmp(FReg(2), RegOrMem::Reg(smax), prec));
            a.push(Jcc(Cond::Le, skip));
            a.push(FMov(smax, FReg(2), prec));
            a.push(IMov(imax, idx));
            if g * vl + lane > 0 {
                a.push(IAddImm(imax, g * vl + lane));
            }
            a.bind(skip);
        }
        a.push(VBcast(vmax, smax, prec));
        a.push(Jmp(backs[g as usize]));
    }

    CompiledKernel {
        name: format!("i{}amax*", prec.blas_char()),
        prec,
        program: a.finish(),
        frame_bytes: 0,
        arg_convention: vec![ArgSlot::PtrReg(0), ArgSlot::IntReg(1)],
        ret: RetSlot::I0,
    }
}

/// Block-fetch `copy`: 512-byte blocks, touch phase then NT copy phase.
pub fn copy_block_fetch(prec: Prec) -> CompiledKernel {
    let eb = prec.bytes() as i64;
    const BLOCK_BYTES: i64 = 512;
    let block_elems = BLOCK_BYTES / eb;
    let y = IReg(1);
    let n = IReg(2);

    let mut a = Asm::new();
    let tail = a.new_label();
    let done = a.new_label();

    a.push(ICmpImm(n, block_elems));
    a.push(Jcc(Cond::Lt, tail));

    let top = a.here();
    // Touch phase: one load per line, back-to-back (pure read burst).
    for line in 0..(BLOCK_BYTES / 64) {
        a.push(FLd(FReg(0), Addr::base_disp(X, line * 64), prec));
    }
    // Copy phase: 16-byte vector moves, streamed out with NT stores.
    for off in (0..BLOCK_BYTES).step_by(16) {
        a.push(VLd(FReg(1), Addr::base_disp(X, off), prec, true));
        a.push(VStNt(Addr::base_disp(y, off), FReg(1), prec));
    }
    a.push(IAddImm(X, BLOCK_BYTES));
    a.push(IAddImm(y, BLOCK_BYTES));
    a.push(ISubImm(n, block_elems));
    a.push(ICmpImm(n, block_elems));
    a.push(Jcc(Cond::Ge, top));

    // Scalar tail.
    a.bind(tail);
    a.push(ICmpImm(n, 0));
    a.push(Jcc(Cond::Le, done));
    let ttop = a.here();
    a.push(FLd(FReg(0), Addr::base(X), prec));
    a.push(FSt(Addr::base(y), FReg(0), prec));
    a.push(IAddImm(X, eb));
    a.push(IAddImm(y, eb));
    a.push(IDec(n));
    a.push(Jcc(Cond::Gt, ttop));
    a.bind(done);
    a.push(Halt);

    CompiledKernel {
        name: format!("{}copy*", prec.blas_char()),
        prec,
        program: a.finish(),
        frame_bytes: 0,
        arg_convention: vec![ArgSlot::PtrReg(0), ArgSlot::PtrReg(1), ArgSlot::IntReg(2)],
        ret: RetSlot::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifko::runner::{run_once, Context, KernelArgs};
    use ifko::verify;
    use ifko_blas::ops::BlasOp;
    use ifko_blas::{Kernel, Workload};

    #[test]
    fn vectorized_iamax_correct_both_precisions_many_sizes() {
        for prec in [Prec::D, Prec::S] {
            let c = iamax_vectorized(prec);
            for n in [0usize, 1, 3, 4, 5, 17, 1000, 4099] {
                let w = Workload::generate(n, n as u64 + 7);
                let k = Kernel {
                    op: BlasOp::Iamax,
                    prec,
                };
                let mach = ifko_xsim::p4e();
                let out = run_once(
                    &c,
                    &KernelArgs {
                        kernel: k,
                        workload: &w,
                        context: Context::OutOfCache,
                    },
                    &mach,
                )
                .unwrap();
                verify(k, &w, &out).unwrap_or_else(|e| panic!("{} n={n}: {e}", c.name));
            }
        }
    }

    #[test]
    fn block_fetch_copy_correct_both_precisions() {
        for prec in [Prec::D, Prec::S] {
            let c = copy_block_fetch(prec);
            for n in [0usize, 1, 63, 64, 65, 500, 4096] {
                let w = Workload::generate(n, n as u64);
                let k = Kernel {
                    op: BlasOp::Copy,
                    prec,
                };
                let mach = ifko_xsim::p4e();
                let out = run_once(
                    &c,
                    &KernelArgs {
                        kernel: k,
                        workload: &w,
                        context: Context::OutOfCache,
                    },
                    &mach,
                )
                .unwrap();
                verify(k, &w, &out).unwrap_or_else(|e| panic!("{} n={n}: {e}", c.name));
            }
        }
    }

    #[test]
    fn vectorized_iamax_beats_scalar_compiled() {
        let mach = ifko_xsim::p4e();
        let prec = Prec::S;
        let k = Kernel {
            op: BlasOp::Iamax,
            prec,
        };
        let w = Workload::generate(20_000, 3);
        let timer = ifko::Timer::exact();
        let args = KernelArgs {
            kernel: k,
            workload: &w,
            context: Context::InL2,
        };
        let asm = timer.time(&iamax_vectorized(prec), &args, &mach).unwrap();
        let compiled = crate::models::compile_gcc(k, &mach).unwrap();
        let gcc = timer.time(&compiled, &args, &mach).unwrap();
        assert!(
            asm * 3 < gcc * 2,
            "hand-vectorized isamax ({asm}) should be >=1.5x faster than scalar ({gcc})"
        );
    }
}
