//! The ATLAS baseline: a library of hand-tuned kernel variants per
//! operation plus ATLAS-style empirical selection.
//!
//! "ATLAS empirically searches a series of implementations, which were
//! laboriously written and hand-tuned using mixtures of assembly and ANSI
//! C, and contain a multitude of both high and low-level optimizations."
//! Here the C-with-intrinsics variants are expressed as fixed, hand-chosen
//! transformation recipes through the common backend, and the all-assembly
//! `*` variants (vectorized iamax, block-fetch copy) come from
//! [`crate::asm_kernels`]. Selection times every correct variant and
//! keeps the fastest — exactly ATLAS's install-time search.

use crate::asm_kernels;
use ifko::runner::{run_once, Context, KernelArgs};
use ifko::tester::verify;
use ifko::Timer;
use ifko_blas::hil_src::hil_source;
use ifko_blas::ops::BlasOp;
use ifko_blas::{Kernel, Workload};
use ifko_fko::ir::PrefKind;
use ifko_fko::{CompileOpts, CompileSession, CompiledKernel, PrefSpec, TransformParams};
use ifko_xsim::MachineConfig;

/// A selected ATLAS kernel.
#[derive(Clone, Debug)]
pub struct AtlasChoice {
    pub compiled: CompiledKernel,
    /// Variant label; `*`-suffixed names are all-assembly kernels, the
    /// paper's notation for "hand-tuned in assembly".
    pub variant: String,
    pub cycles: u64,
    pub is_assembly: bool,
}

/// The hand-tuned variant library for one kernel on one machine.
pub fn atlas_variants(kernel: Kernel, mach: &MachineConfig) -> Vec<(String, bool, CompiledKernel)> {
    let mut out: Vec<(String, bool, CompiledKernel)> = Vec::new();

    // C-level hand-tuned recipes (fixed, not searched): a streaming
    // variant, a write-streaming variant, a compute-dense variant and an
    // in-cache variant — the classic ATLAS kernel family shapes.
    let src = hil_source(kernel.op, kernel.prec);
    let Ok(sess) = CompileSession::from_source(&src, mach) else {
        return out;
    };
    let rep = sess.report();
    let line = mach.prefetch_line() as i64;
    let le = rep.arch.line_elems as u32;
    let has_red = !rep.ae_candidates.is_empty();
    let has_store = !rep.wnt_candidates.is_empty();
    let pf = |kind: Option<PrefKind>, dist: i64| -> Vec<PrefSpec> {
        rep.pf_candidates
            .iter()
            .map(|p| PrefSpec {
                ptr: *p,
                kind,
                dist,
            })
            .collect()
    };
    let mut recipes: Vec<(&str, TransformParams)> = Vec::new();
    {
        let mut p = TransformParams::off();
        p.simd = rep.vectorizable.is_ok();
        p.unroll = le;
        p.accum_expand = if has_red { 2 } else { 1 };
        p.prefetch = pf(Some(PrefKind::Nta), 4 * line);
        recipes.push(("c_stream", p));
    }
    {
        let mut p = TransformParams::off();
        p.simd = rep.vectorizable.is_ok();
        p.unroll = le;
        p.accum_expand = if has_red { 4 } else { 1 };
        p.prefetch = pf(Some(PrefKind::Nta), 5 * line);
        p.wnt = has_store;
        recipes.push(("c_wstream", p));
    }
    {
        let mut p = TransformParams::off();
        p.simd = rep.vectorizable.is_ok();
        p.unroll = 2 * le;
        p.accum_expand = if has_red { 4 } else { 1 };
        p.prefetch = pf(Some(PrefKind::T0), 4 * line);
        recipes.push(("c_dense", p));
    }
    {
        let mut p = TransformParams::off();
        p.simd = rep.vectorizable.is_ok();
        p.unroll = 4 * le;
        p.accum_expand = if has_red { 4 } else { 1 };
        p.prefetch = pf(Some(PrefKind::T0), 2 * line);
        recipes.push(("c_incache", p));
    }
    {
        let mut p = TransformParams::off();
        p.simd = rep.vectorizable.is_ok();
        p.unroll = 4;
        p.prefetch = pf(None, 0);
        p.wnt = has_store;
        recipes.push(("c_plain_wnt", p));
    }
    for (name, p) in recipes {
        if let Ok(c) = sess.compile(&p, CompileOpts::default()) {
            out.push((name.to_string(), false, c));
        }
    }

    // All-assembly variants.
    match kernel.op {
        BlasOp::Iamax => {
            let c = asm_kernels::iamax_vectorized(kernel.prec);
            out.push((c.name.clone(), true, c));
        }
        BlasOp::Copy => {
            let c = asm_kernels::copy_block_fetch(kernel.prec);
            out.push((c.name.clone(), true, c));
        }
        _ => {}
    }
    out
}

/// ATLAS's empirical selection: verify and time every variant, keep the
/// fastest correct one.
pub fn atlas_best(
    kernel: Kernel,
    mach: &MachineConfig,
    context: Context,
    workload: &Workload,
    timer: &Timer,
) -> Option<AtlasChoice> {
    let mut best: Option<AtlasChoice> = None;
    for (variant, is_assembly, compiled) in atlas_variants(kernel, mach) {
        let args = KernelArgs {
            kernel,
            workload,
            context,
        };
        let Ok(out) = run_once(&compiled, &args, mach) else {
            continue;
        };
        if verify(kernel, workload, &out).is_err() {
            continue;
        }
        let Ok(cycles) = timer.time(&compiled, &args, mach) else {
            continue;
        };
        let better = best.as_ref().map(|b| cycles < b.cycles).unwrap_or(true);
        if better {
            best = Some(AtlasChoice {
                compiled,
                variant,
                cycles,
                is_assembly,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifko_xsim::isa::Prec;
    use ifko_xsim::{opteron, p4e};

    #[test]
    fn variant_library_is_nonempty_for_all_kernels() {
        let mach = p4e();
        for k in ifko_blas::ALL_KERNELS {
            let vs = atlas_variants(k, &mach);
            assert!(vs.len() >= 4, "{}: only {} variants", k.name(), vs.len());
            if matches!(k.op, BlasOp::Iamax | BlasOp::Copy) {
                assert!(
                    vs.iter().any(|(_, asm, _)| *asm),
                    "{} needs an asm variant",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn selection_picks_a_correct_variant_for_every_kernel() {
        let mach = opteron();
        let w = Workload::generate(2000, 21);
        let timer = Timer::exact();
        for k in ifko_blas::ALL_KERNELS {
            let choice = atlas_best(k, &mach, Context::OutOfCache, &w, &timer)
                .unwrap_or_else(|| panic!("{}: no variant survived", k.name()));
            assert!(choice.cycles > 0);
        }
    }

    #[test]
    fn iamax_selection_prefers_the_assembly_kernel() {
        let mach = p4e();
        let w = Workload::generate(8000, 33);
        let timer = Timer::exact();
        let k = Kernel {
            op: BlasOp::Iamax,
            prec: Prec::S,
        };
        let choice = atlas_best(k, &mach, Context::InL2, &w, &timer).unwrap();
        assert!(
            choice.is_assembly,
            "isamax should select the vectorized assembly (picked {})",
            choice.variant
        );
    }
}
