//! Coverage tests for the less-travelled corners of the ISA and CPU:
//! indexed addressing, integer loads/stores, shifts, division, horizontal
//! max, unaligned vector access, and the branch predictor.

use ifko_xsim::isa::Inst::*;
use ifko_xsim::isa::{Addr, Cond, FReg, IReg, Prec, RegOrMem};
use ifko_xsim::{opteron, p4e, Asm, Cpu, Memory};

fn fresh(memsize: usize) -> (Cpu, Memory) {
    let mut cpu = Cpu::new(p4e());
    cpu.flush_caches();
    (cpu, Memory::new(memsize))
}

#[test]
fn lea_and_indexed_addressing() {
    let (mut cpu, mut m) = fresh(1 << 16);
    let base = m.alloc(256, 64);
    m.write_f64(base + 5 * 8, 42.5).unwrap();
    let mut a = Asm::new();
    // r1 = 5; load x0 from [r0 + r1*8]
    a.push(IMovImm(IReg(1), 5));
    a.push(FLd(
        FReg(0),
        Addr::base_index(IReg(0), IReg(1), 8, 0),
        Prec::D,
    ));
    // lea r2 = r0 + r1*8 + 8
    a.push(Lea(IReg(2), Addr::base_index(IReg(0), IReg(1), 8, 8)));
    a.push(Halt);
    cpu.set_ireg(IReg(0), base as i64);
    cpu.run(&a.finish(), &mut m).unwrap();
    assert_eq!(cpu.freg_f64(FReg(0)), 42.5);
    assert_eq!(cpu.ireg(IReg(2)), (base + 48) as i64);
}

#[test]
fn integer_load_store_roundtrip() {
    let (mut cpu, mut m) = fresh(1 << 16);
    let base = m.alloc(64, 64);
    let mut a = Asm::new();
    a.push(IMovImm(IReg(1), -123456789));
    a.push(IStore(Addr::base(IReg(0)), IReg(1)));
    a.push(ILoad(IReg(2), Addr::base(IReg(0))));
    a.push(Halt);
    cpu.set_ireg(IReg(0), base as i64);
    cpu.run(&a.finish(), &mut m).unwrap();
    assert_eq!(cpu.ireg(IReg(2)), -123456789);
    assert_eq!(m.read_i64(base).unwrap(), -123456789);
}

#[test]
fn shifts_div_rem() {
    let (mut cpu, mut m) = fresh(4096);
    let mut a = Asm::new();
    a.push(IMovImm(IReg(0), 5));
    a.push(IShlImm(IReg(0), 3)); // 40
    a.push(IMov(IReg(1), IReg(0)));
    a.push(IDivImm(IReg(1), 6)); // 6
    a.push(IMov(IReg(2), IReg(0)));
    a.push(IRemImm(IReg(2), 6)); // 4
    a.push(Halt);
    cpu.run(&a.finish(), &mut m).unwrap();
    assert_eq!(cpu.ireg(IReg(0)), 40);
    assert_eq!(cpu.ireg(IReg(1)), 6);
    assert_eq!(cpu.ireg(IReg(2)), 4);
}

#[test]
fn vhmax_reduces_lanes() {
    let (mut cpu, mut m) = fresh(1 << 16);
    let base = m.alloc(64, 64);
    m.store_f64_slice(base, &[3.5, -7.0]).unwrap();
    let mut a = Asm::new();
    a.push(VLd(FReg(0), Addr::base(IReg(0)), Prec::D, true));
    a.push(VHMax(FReg(1), FReg(0), Prec::D));
    a.push(Halt);
    cpu.set_ireg(IReg(0), base as i64);
    cpu.run(&a.finish(), &mut m).unwrap();
    assert_eq!(cpu.freg_f64(FReg(1)), 3.5);
}

#[test]
fn fsqrt_computes_per_precision() {
    let (mut cpu, mut m) = fresh(4096);
    let mut a = Asm::new();
    a.push(FLdImm(FReg(0), 2.0, Prec::D));
    a.push(FSqrt(FReg(0), Prec::D));
    a.push(FLdImm(FReg(1), 2.0, Prec::S));
    a.push(FSqrt(FReg(1), Prec::S));
    a.push(Halt);
    cpu.run(&a.finish(), &mut m).unwrap();
    assert_eq!(cpu.freg_f64(FReg(0)), 2.0f64.sqrt());
    assert_eq!(cpu.freg_f32(FReg(1)), 2.0f32.sqrt());
}

#[test]
fn unaligned_vector_access_works_and_costs_more() {
    let run = |disp: i64| {
        let (mut cpu, mut m) = fresh(1 << 16);
        let base = m.alloc(4096, 64);
        for i in 0..32 {
            m.write_f64(base + 8 * i, i as f64).unwrap();
        }
        cpu.preload_all(base, 4096);
        let mut a = Asm::new();
        let aligned = disp % 16 == 0;
        for k in 0..64 {
            let _ = k;
            a.push(VLd(
                FReg(0),
                Addr::base_disp(IReg(0), disp),
                Prec::D,
                aligned,
            ));
            a.push(VAdd(FReg(1), RegOrMem::Reg(FReg(0)), Prec::D));
        }
        a.push(Halt);
        cpu.set_ireg(IReg(0), base as i64);
        let s = cpu.run(&a.finish(), &mut m).unwrap();
        (cpu.freg_f64(FReg(1)), s.cycles)
    };
    let (lane0_a, cyc_a) = run(0);
    let (lane0_u, cyc_u) = run(8); // unaligned to 16 bytes
                                   // lane 0 accumulates element [disp/8] 64 times.
    assert_eq!(lane0_a, 0.0);
    assert_eq!(lane0_u, 64.0);
    assert!(
        cyc_u > cyc_a,
        "unaligned ({cyc_u}) must cost more than aligned ({cyc_a})"
    );
}

#[test]
fn branch_predictor_learns_loop_exits() {
    // A nested-style loop pattern: inner branch alternates direction each
    // outer iteration; the 1-bit predictor mispredicts on changes only.
    let (mut cpu, mut m) = fresh(4096);
    let mut a = Asm::new();
    a.push(IMovImm(IReg(0), 100)); // outer count
    let outer = a.here();
    a.push(IMovImm(IReg(1), 10)); // inner count
    let inner = a.here();
    a.push(IDec(IReg(1)));
    a.push(Jcc(Cond::Gt, inner)); // taken 9x, not-taken once per outer
    a.push(IDec(IReg(0)));
    a.push(Jcc(Cond::Gt, outer));
    a.push(Halt);
    let s = cpu.run(&a.finish(), &mut m).unwrap();
    // The inner exit mispredicts at most twice per outer iteration (once
    // leaving, once re-entering); total branches = 100*10 + 100.
    assert_eq!(s.branches, 1100);
    assert!(
        s.mispredicts <= 201,
        "1-bit predictor should cap mispredicts at ~2/outer, got {}",
        s.mispredicts
    );
    assert!(s.mispredicts >= 99, "loop exits must mispredict");
}

#[test]
fn opteron_and_p4e_time_the_same_program_differently() {
    let prog = {
        let mut a = Asm::new();
        a.push(IMovImm(IReg(1), 1000));
        let top = a.here();
        a.push(FAdd(FReg(0), RegOrMem::Reg(FReg(1)), Prec::D)); // lat chain
        a.push(IDec(IReg(1)));
        a.push(Jcc(Cond::Gt, top));
        a.push(Halt);
        a.finish()
    };
    let mut m1 = Memory::new(4096);
    let mut c1 = Cpu::new(p4e());
    let s1 = c1.run(&prog, &mut m1).unwrap();
    let mut m2 = Memory::new(4096);
    let mut c2 = Cpu::new(opteron());
    let s2 = c2.run(&prog, &mut m2).unwrap();
    // P4E fadd latency 5 vs Opteron 4: the chain dominates.
    assert!(
        s1.cycles > s2.cycles,
        "P4E {} vs Opteron {}",
        s1.cycles,
        s2.cycles
    );
    assert_eq!(s1.insts, s2.insts);
}

#[test]
fn halt_waits_for_inflight_results() {
    // A long-latency op right before halt must be counted.
    let (mut cpu, mut m) = fresh(4096);
    let mut a = Asm::new();
    a.push(FLdImm(FReg(0), 2.0, Prec::D));
    for _ in 0..4 {
        a.push(FDiv(FReg(0), RegOrMem::Reg(FReg(0)), Prec::D));
    }
    a.push(Halt);
    let s = cpu.run(&a.finish(), &mut m).unwrap();
    // 4 dependent divides at 32 cycles each.
    assert!(
        s.cycles >= 4 * 32,
        "cycles {} must cover the divide chain",
        s.cycles
    );
}
