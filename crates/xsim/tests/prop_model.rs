//! Property-based tests of the machine-model substrate: the cache against
//! a reference set-associative LRU model, and bus invariants.

use ifko_xsim::bus::{Bus, BusCfg};
use ifko_xsim::cache::{Cache, CacheCfg, Probe};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference LRU model: per-set queue of tags, most recent at the back.
struct RefCache {
    cfg: CacheCfg,
    sets: Vec<VecDeque<u64>>,
}

impl RefCache {
    fn new(cfg: CacheCfg) -> Self {
        let nsets = cfg.sets() as usize;
        RefCache {
            cfg,
            sets: (0..nsets).map(|_| VecDeque::new()).collect(),
        }
    }
    fn set_tag(&self, addr: u64) -> (usize, u64) {
        let lineno = addr / self.cfg.line;
        let set = (lineno % self.cfg.sets()) as usize;
        let tag = lineno / self.cfg.sets();
        (set, tag)
    }
    fn probe(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_tag(addr);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_back(tag);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, addr: u64) {
        let (set, tag) = self.set_tag(addr);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
        } else if q.len() == self.cfg.assoc as usize {
            q.pop_front();
        }
        q.push_back(tag);
    }
    fn invalidate(&mut self, addr: u64) {
        let (set, tag) = self.set_tag(addr);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
        }
    }
}

#[derive(Clone, Debug)]
enum CacheOp {
    Probe(u64),
    Insert(u64),
    Invalidate(u64),
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    // Addresses in a small window so sets collide and evictions happen.
    let addr = 0u64..8192;
    prop::collection::vec(
        prop_oneof![
            addr.clone().prop_map(CacheOp::Probe),
            addr.clone().prop_map(CacheOp::Insert),
            addr.prop_map(CacheOp::Invalidate),
        ],
        1..400,
    )
}

proptest! {
    /// The cache's hit/miss behaviour matches the reference LRU model
    /// under arbitrary probe/insert/invalidate sequences.
    #[test]
    fn cache_matches_reference_lru(ops in cache_ops()) {
        let cfg = CacheCfg { size: 1024, line: 64, assoc: 2, latency: 1 };
        let mut dut = Cache::new(cfg);
        let mut refc = RefCache::new(cfg);
        for op in ops {
            match op {
                CacheOp::Probe(a) => {
                    let hit_dut = matches!(dut.probe(a), Probe::Hit { .. });
                    let hit_ref = refc.probe(a);
                    prop_assert_eq!(hit_dut, hit_ref, "probe {:#x}", a);
                }
                CacheOp::Insert(a) => {
                    dut.insert(a, 0, false);
                    refc.insert(a);
                }
                CacheOp::Invalidate(a) => {
                    dut.invalidate(a);
                    refc.invalidate(a);
                }
            }
        }
    }

    /// Bus reads never travel back in time and bandwidth is respected:
    /// a read of B bytes occupies at least B/bpc cycles.
    #[test]
    fn bus_reads_are_monotonic_and_bandwidth_limited(
        reqs in prop::collection::vec((0u64..10_000, 1u64..512), 1..100)
    ) {
        let bpc = 2.0;
        let mut bus = Bus::new(BusCfg { bytes_per_cycle: bpc, turnaround: 8, write_queue: 256 });
        let mut last_done = 0u64;
        let mut now = 0u64;
        for (advance, bytes) in reqs {
            now += advance % 64;
            let (start, done) = bus.read(now, bytes);
            prop_assert!(start >= now, "transfer starts before request");
            prop_assert!(start >= last_done.min(start), "overlapping transfers");
            let min_cycles = (bytes as f64 / bpc).floor() as u64;
            prop_assert!(done >= start + min_cycles.max(1) - 1,
                "transfer faster than bandwidth: {} bytes in {} cycles", bytes, done - start);
            prop_assert!(done > start);
            last_done = done;
        }
    }

    /// Buffered writes never reject and always increase the busy horizon,
    /// and drain_all clears the backlog completely.
    #[test]
    fn bus_write_backlog_drains(writes in prop::collection::vec(1u64..256, 1..50)) {
        let mut bus = Bus::new(BusCfg { bytes_per_cycle: 2.0, turnaround: 4, write_queue: 128 });
        let mut total = 0u64;
        for w in &writes {
            bus.write(0, *w);
            total += w;
        }
        prop_assert_eq!(bus.bytes_written, total);
        let done = bus.drain_all(0);
        // All bytes must take at least total/bpc cycles to drain.
        prop_assert!(done >= (total as f64 / 2.0) as u64);
        prop_assert!(!bus.busy(done));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory round-trips arbitrary f64 data at arbitrary (aligned)
    /// offsets.
    #[test]
    fn memory_roundtrip(data in prop::collection::vec(prop::num::f64::ANY, 1..64), off in 0u64..128) {
        let mut m = ifko_xsim::Memory::new(1 << 16);
        let base = m.alloc(8 * 64 + 1024, 64) + off * 8;
        for (i, v) in data.iter().enumerate() {
            m.write_f64(base + 8 * i as u64, *v).unwrap();
        }
        for (i, v) in data.iter().enumerate() {
            let got = m.read_f64(base + 8 * i as u64).unwrap();
            prop_assert!(got == *v || (got.is_nan() && v.is_nan()));
        }
    }
}
