//! End-to-end tests of the simulated CPU: hand-assembled programs whose
//! functional results and timing behaviour are both checked.

use ifko_xsim::isa::Inst::*;
use ifko_xsim::{
    opteron, p4e, Addr, Asm, Cond, Cpu, FReg, IReg, Inst, Memory, Prec, PrefKind, RegOrMem,
};

const X: IReg = IReg(0);
const Y: IReg = IReg(1);
const N: IReg = IReg(2);
const T0: FReg = FReg(0);
const T1: FReg = FReg(1);

fn mem_with_vec(n: usize) -> (Memory, u64, u64) {
    let mut m = Memory::new(8 << 20);
    let x = m.alloc_vector(n as u64, 8);
    let y = m.alloc_vector(n as u64, 8);
    let xs: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.25).collect();
    m.store_f64_slice(x, &xs).unwrap();
    m.store_f64_slice(y, &ys).unwrap();
    (m, x, y)
}

/// Scalar ddot loop: dot += x[i]*y[i].
fn ddot_prog(unroll: usize) -> ifko_xsim::Program {
    let mut a = Asm::new();
    a.push(FZero(FReg(7)));
    let top = a.here();
    for u in 0..unroll {
        let off = (u * 8) as i64;
        a.push(FLd(T0, Addr::base_disp(X, off), Prec::D));
        a.push(FMul(T0, RegOrMem::Mem(Addr::base_disp(Y, off)), Prec::D));
        a.push(FAdd(FReg(7), RegOrMem::Reg(T0), Prec::D));
    }
    a.push(IAddImm(X, (unroll * 8) as i64));
    a.push(IAddImm(Y, (unroll * 8) as i64));
    a.push(ISubImm(N, unroll as i64));
    a.push(ICmpImm(N, 0));
    a.push(Jcc(Cond::Gt, top));
    a.push(Halt);
    a.finish()
}

fn run_ddot(cpu: &mut Cpu, n: usize, unroll: usize) -> (f64, ifko_xsim::RunStats) {
    let (mut m, x, y) = mem_with_vec(n);
    let expected: f64 = {
        let xs = m.load_f64_slice(x, n).unwrap();
        let ys = m.load_f64_slice(y, n).unwrap();
        xs.iter().zip(&ys).map(|(a, b)| a * b).sum()
    };
    cpu.set_ireg(X, x as i64);
    cpu.set_ireg(Y, y as i64);
    cpu.set_ireg(N, n as i64);
    let stats = cpu.run(&ddot_prog(unroll), &mut m).unwrap();
    let got = cpu.freg_f64(FReg(7));
    assert!(
        (got - expected).abs() < 1e-9,
        "dot result {got} != {expected}"
    );
    (got, stats)
}

#[test]
fn ddot_functional_and_counts() {
    let mut cpu = Cpu::new(p4e());
    cpu.flush_caches();
    let (_, s) = run_ddot(&mut cpu, 1024, 1);
    assert_eq!(s.loads, 2048);
    assert!(s.cycles > 0);
    assert!(
        s.l1_misses >= 2 * 1024 / 8,
        "cold caches must miss per line"
    );
}

#[test]
fn unrolling_reduces_dynamic_instructions() {
    let mut c1 = Cpu::new(p4e());
    c1.flush_caches();
    let (_, s1) = run_ddot(&mut c1, 1024, 1);
    let mut c4 = Cpu::new(p4e());
    c4.flush_caches();
    let (_, s4) = run_ddot(&mut c4, 1024, 4);
    assert!(s4.insts < s1.insts, "unroll 4 executes fewer instructions");
}

#[test]
fn warm_cache_is_faster_than_cold() {
    let n = 2048;
    let mut cold = Cpu::new(p4e());
    cold.flush_caches();
    let (_, sc) = run_ddot(&mut cold, n, 1);

    let mut warm = Cpu::new(p4e());
    warm.flush_caches();
    // Preload both vectors into L2.
    let (m, x, _y) = mem_with_vec(n);
    drop(m);
    warm.preload_l2(x, (2 * n * 8) as u64 + 4096);
    let (_, sw) = run_ddot(&mut warm, n, 1);
    // Simple scalar unroll-1 code is issue-stall bound either way (the
    // hardware stream prefetcher streams the cold data), so the gap here is
    // modest; tuned-code in-L2 speedups are exercised at the harness level.
    assert!(
        sw.cycles < sc.cycles,
        "in-L2 ({}) should beat cold ({})",
        sw.cycles,
        sc.cycles
    );
    assert_eq!(sw.l2_misses, 0, "preloaded run must not miss L2");
    assert!(
        sw.bus_read_bytes < sc.bus_read_bytes / 4,
        "warm run uses far less bus"
    );
}

/// Prefetched ddot: adds prefetchnta of X and Y `dist` bytes ahead, one per
/// line per iteration group of 8 doubles.
fn ddot_prefetch_prog(dist: i64, kind: PrefKind) -> ifko_xsim::Program {
    let mut a = Asm::new();
    a.push(FZero(FReg(7)));
    let top = a.here();
    a.push(Inst::Prefetch(Addr::base_disp(X, dist), kind));
    a.push(Inst::Prefetch(Addr::base_disp(Y, dist), kind));
    for u in 0..8 {
        let off = (u * 8) as i64;
        a.push(FLd(T0, Addr::base_disp(X, off), Prec::D));
        a.push(FMul(T0, RegOrMem::Mem(Addr::base_disp(Y, off)), Prec::D));
        a.push(FAdd(FReg(7), RegOrMem::Reg(T0), Prec::D));
    }
    a.push(IAddImm(X, 64));
    a.push(IAddImm(Y, 64));
    a.push(ISubImm(N, 8));
    a.push(ICmpImm(N, 0));
    a.push(Jcc(Cond::Gt, top));
    a.push(Halt);
    a.finish()
}

#[test]
fn prefetch_helps_out_of_cache() {
    let n = 8192;
    let (mut m, x, y) = mem_with_vec(n);
    let mut base = Cpu::new(p4e());
    base.flush_caches();
    base.set_ireg(X, x as i64);
    base.set_ireg(Y, y as i64);
    base.set_ireg(N, n as i64);
    let s0 = base.run(&ddot_prog(8), &mut m).unwrap();

    let mut pf = Cpu::new(p4e());
    pf.flush_caches();
    pf.set_ireg(X, x as i64);
    pf.set_ireg(Y, y as i64);
    pf.set_ireg(N, n as i64);
    let s1 = pf
        .run(&ddot_prefetch_prog(256, PrefKind::Nta), &mut m)
        .unwrap();
    assert!(
        s1.cycles < s0.cycles * 3 / 4,
        "prefetch ({}) should beat no-prefetch ({}) by >25%",
        s1.cycles,
        s0.cycles
    );
    assert!(s1.prefetch_issued > 0);
}

#[test]
fn prefetch_distance_has_interior_optimum() {
    let n = 8192;
    let cycles_at = |dist: i64| {
        let (mut m, x, y) = mem_with_vec(n);
        let mut cpu = Cpu::new(p4e());
        cpu.flush_caches();
        cpu.set_ireg(X, x as i64);
        cpu.set_ireg(Y, y as i64);
        cpu.set_ireg(N, n as i64);
        cpu.run(&ddot_prefetch_prog(dist, PrefKind::Nta), &mut m)
            .unwrap()
            .cycles
    };
    let near = cycles_at(64);
    let mid = cycles_at(256);
    let huge = cycles_at(12 * 1024); // beyond L1 capacity for 2 streams
    assert!(
        mid < near,
        "mid-distance ({mid}) should beat too-near ({near})"
    );
    assert!(
        mid < huge,
        "mid-distance ({mid}) should beat too-far ({huge})"
    );
}

#[test]
fn vectorized_dot_matches_scalar_and_is_faster_in_cache() {
    let n = 4096usize;
    let (mut m, x, y) = mem_with_vec(n);
    let expected: f64 = {
        let xs = m.load_f64_slice(x, n).unwrap();
        let ys = m.load_f64_slice(y, n).unwrap();
        xs.iter().zip(&ys).map(|(a, b)| a * b).sum()
    };

    // Vector version: 2 doubles per iteration.
    let mut a = Asm::new();
    a.push(FZero(FReg(7)));
    let top = a.here();
    a.push(VLd(T0, Addr::base(X), Prec::D, true));
    a.push(VMul(T0, RegOrMem::Mem(Addr::base(Y)), Prec::D));
    a.push(VAdd(FReg(7), RegOrMem::Reg(T0), Prec::D));
    a.push(IAddImm(X, 16));
    a.push(IAddImm(Y, 16));
    a.push(ISubImm(N, 2));
    a.push(ICmpImm(N, 0));
    a.push(Jcc(Cond::Gt, top));
    a.push(VHSum(T1, FReg(7), Prec::D));
    a.push(Halt);
    let vprog = a.finish();

    let mut vc = Cpu::new(p4e());
    vc.preload_all(x, (2 * n * 8) as u64 + 4096);
    vc.set_ireg(X, x as i64);
    vc.set_ireg(Y, y as i64);
    vc.set_ireg(N, n as i64);
    let sv = vc.run(&vprog, &mut m).unwrap();
    let got = vc.freg_f64(T1);
    assert!((got - expected).abs() < 1e-9);

    let mut sc = Cpu::new(p4e());
    sc.preload_all(x, (2 * n * 8) as u64 + 4096);
    sc.set_ireg(X, x as i64);
    sc.set_ireg(Y, y as i64);
    sc.set_ireg(N, n as i64);
    let ss = sc.run(&ddot_prog(1), &mut m).unwrap();
    assert!(
        sv.cycles * 3 < ss.cycles * 2,
        "in-cache SIMD ({}) should be at least 1.5x scalar ({})",
        sv.cycles,
        ss.cycles
    );
}

#[test]
fn accumulator_expansion_breaks_dependence_chain_in_cache() {
    // asum-like: sum += x[i], all in L1 (8 KB fits the 16 KB P4E L1). One
    // accumulator serializes on fadd_lat; four break the chain.
    let n = 1024usize;
    let build = |nacc: usize| {
        let mut a = Asm::new();
        for k in 0..nacc {
            a.push(FZero(FReg(4 + k as u8)));
        }
        let top = a.here();
        for k in 0..nacc {
            a.push(FAdd(
                FReg(4 + k as u8),
                RegOrMem::Mem(Addr::base_disp(X, (k * 8) as i64)),
                Prec::D,
            ));
        }
        a.push(IAddImm(X, (nacc * 8) as i64));
        a.push(ISubImm(N, nacc as i64));
        a.push(ICmpImm(N, 0));
        a.push(Jcc(Cond::Gt, top));
        for k in 1..nacc {
            a.push(FAdd(FReg(4), RegOrMem::Reg(FReg(4 + k as u8)), Prec::D));
        }
        a.push(Halt);
        a.finish()
    };
    let run = |nacc: usize| {
        let (mut m, x, _) = mem_with_vec(n);
        let mut cpu = Cpu::new(p4e());
        cpu.preload_all(x, (n * 8) as u64);
        cpu.set_ireg(X, x as i64);
        cpu.set_ireg(N, n as i64);
        let s = cpu.run(&build(nacc), &mut m).unwrap();
        let expected: f64 = m.load_f64_slice(x, n).unwrap().iter().sum();
        assert!((cpu.freg_f64(FReg(4)) - expected).abs() < 1e-9);
        s.cycles
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four * 2 < one,
        "4 accumulators ({four}) should be >2x faster than 1 ({one}) in-cache"
    );
}

#[test]
fn nt_store_to_read_line_penalized_on_opteron_not_p4e() {
    // swap-like single-array pattern: read x[i], write x[i] with NT store.
    let n = 4096usize;
    let prog = {
        let mut a = Asm::new();
        let top = a.here();
        a.push(FLd(T0, Addr::base(X), Prec::D));
        a.push(FAdd(T0, RegOrMem::Reg(T0), Prec::D));
        a.push(FStNt(Addr::base(X), T0, Prec::D));
        a.push(IAddImm(X, 8));
        a.push(ISubImm(N, 1));
        a.push(ICmpImm(N, 0));
        a.push(Jcc(Cond::Gt, top));
        a.push(Halt);
        a.finish()
    };
    let normal_prog = {
        let mut a = Asm::new();
        let top = a.here();
        a.push(FLd(T0, Addr::base(X), Prec::D));
        a.push(FAdd(T0, RegOrMem::Reg(T0), Prec::D));
        a.push(FSt(Addr::base(X), T0, Prec::D));
        a.push(IAddImm(X, 8));
        a.push(ISubImm(N, 1));
        a.push(ICmpImm(N, 0));
        a.push(Jcc(Cond::Gt, top));
        a.push(Halt);
        a.finish()
    };
    let run = |machine: ifko_xsim::MachineConfig, p: &ifko_xsim::Program| {
        let (mut m, x, _) = mem_with_vec(n);
        let mut cpu = Cpu::new(machine);
        cpu.flush_caches();
        cpu.set_ireg(X, x as i64);
        cpu.set_ireg(N, n as i64);
        cpu.run(p, &mut m).unwrap().cycles
    };
    let opt_nt = run(opteron(), &prog);
    let opt_st = run(opteron(), &normal_prog);
    assert!(
        opt_nt > opt_st * 2,
        "Opteron: NT store to read-write operand ({opt_nt}) must be much slower than normal ({opt_st})"
    );
    let p4_nt = run(p4e(), &prog);
    let p4_st = run(p4e(), &normal_prog);
    // At this size the plain P4E version's dirty lines are absorbed by L2,
    // so NT pays real write traffic the plain version defers; the claim is
    // architectural: the read-write NT *penalty ratio* is far worse on the
    // Opteron than on the P4E.
    let ratio_opt = opt_nt as f64 / opt_st as f64;
    let ratio_p4 = p4_nt as f64 / p4_st as f64;
    assert!(
        ratio_opt > 2.0 * ratio_p4,
        "NT penalty must be architecture-specific: opteron {ratio_opt:.2}x vs p4e {ratio_p4:.2}x"
    );
    assert!(
        ratio_p4 < 1.6,
        "P4E NT ratio should stay moderate ({ratio_p4:.2}x)"
    );
}

#[test]
fn nt_store_saves_rfo_traffic_for_write_only_stream() {
    // copy-like: read x, write y, with x prefetched (as tuned code would
    // be) so the loop is bus-bound. NT on y halves y's bus traffic by
    // skipping the read-for-ownership + writeback. The working set
    // (2 x 512 KB) exceeds L2, so the plain version really pays writebacks
    // — the paper's out-of-cache regime.
    let n = 65536usize;
    let build = |nt: bool| {
        let mut a = Asm::new();
        let top = a.here();
        a.push(Inst::Prefetch(Addr::base_disp(X, 1024), PrefKind::Nta));
        for u in 0..8 {
            let off = (u * 8) as i64;
            a.push(FLd(T0, Addr::base_disp(X, off), Prec::D));
            if nt {
                a.push(FStNt(Addr::base_disp(Y, off), T0, Prec::D));
            } else {
                a.push(FSt(Addr::base_disp(Y, off), T0, Prec::D));
            }
        }
        a.push(IAddImm(X, 64));
        a.push(IAddImm(Y, 64));
        a.push(ISubImm(N, 8));
        a.push(ICmpImm(N, 0));
        a.push(Jcc(Cond::Gt, top));
        a.push(Halt);
        a.finish()
    };
    let run = |nt: bool| {
        let (mut m, x, y) = mem_with_vec(n);
        let mut cpu = Cpu::new(p4e());
        cpu.flush_caches();
        cpu.set_ireg(X, x as i64);
        cpu.set_ireg(Y, y as i64);
        cpu.set_ireg(N, n as i64);
        let s = cpu.run(&build(nt), &mut m).unwrap();
        // Functional check: y == x afterwards.
        assert_eq!(
            m.load_f64_slice(y, n).unwrap(),
            m.load_f64_slice(x, n).unwrap()
        );
        s
    };
    let plain = run(false);
    let nt = run(true);
    assert!(
        nt.bus_read_bytes < plain.bus_read_bytes,
        "NT copy reads less ({} vs {})",
        nt.bus_read_bytes,
        plain.bus_read_bytes
    );
    assert!(
        nt.cycles < plain.cycles,
        "NT copy faster ({} vs {})",
        nt.cycles,
        plain.cycles
    );
}

#[test]
fn branchy_max_search_works_and_mispredicts() {
    // iamax-like: track max of x with a data-dependent branch.
    let n = 1000usize;
    let mut m = Memory::new(1 << 20);
    let x = m.alloc_vector(n as u64, 8);
    let xs: Vec<f64> = (0..n).map(|i| ((i * 37 % 101) as f64) - 50.0).collect();
    m.store_f64_slice(x, &xs).unwrap();
    let expected = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

    let mut a = Asm::new();
    a.push(FLdImm(FReg(6), f64::NEG_INFINITY, Prec::D));
    let top = a.new_label();
    let skip = a.new_label();
    a.bind(top);
    a.push(FLd(T0, Addr::base(X), Prec::D));
    a.push(FCmp(T0, RegOrMem::Reg(FReg(6)), Prec::D));
    a.push(Jcc(Cond::Le, skip));
    a.push(FMov(FReg(6), T0, Prec::D));
    a.bind(skip);
    a.push(IAddImm(X, 8));
    a.push(ISubImm(N, 1));
    a.push(ICmpImm(N, 0));
    a.push(Jcc(Cond::Gt, top));
    a.push(Halt);
    let prog = a.finish();

    let mut cpu = Cpu::new(opteron());
    cpu.preload_all(x, (n * 8) as u64);
    cpu.set_ireg(X, x as i64);
    cpu.set_ireg(N, n as i64);
    let s = cpu.run(&prog, &mut m).unwrap();
    assert_eq!(cpu.freg_f64(FReg(6)), expected);
    assert!(
        s.mispredicts > 0,
        "data-dependent branch must mispredict sometimes"
    );
}

#[test]
fn vcmp_movmsk_detects_lanes() {
    let mut m = Memory::new(1 << 16);
    let x = m.alloc_vector(4, 8);
    m.store_f64_slice(x, &[1.0, 5.0]).unwrap();
    let mut a = Asm::new();
    a.push(FLdImm(T1, 3.0, Prec::D));
    a.push(VBcast(T1, T1, Prec::D));
    a.push(VLd(T0, Addr::base(X), Prec::D, true));
    a.push(VCmpGt(T0, RegOrMem::Reg(T1), Prec::D));
    a.push(VMovMsk(IReg(5), T0, Prec::D));
    a.push(Halt);
    let mut cpu = Cpu::new(p4e());
    cpu.set_ireg(X, x as i64);
    cpu.run(&a.finish(), &mut m).unwrap();
    // lane0: 1.0 > 3.0 false; lane1: 5.0 > 3.0 true => mask = 0b10.
    assert_eq!(cpu.ireg(IReg(5)), 0b10);
}

#[test]
fn inst_limit_catches_runaway() {
    let mut a = Asm::new();
    let top = a.here();
    a.push(Jmp(top));
    let prog = a.finish();
    let mut cpu = Cpu::new(p4e());
    cpu.set_inst_limit(10_000);
    let mut m = Memory::new(4096);
    let err = cpu.run(&prog, &mut m).unwrap_err();
    assert!(matches!(err, ifko_xsim::RunError::InstLimit { .. }));
}

#[test]
fn memory_fault_reported() {
    let mut a = Asm::new();
    a.push(FLd(T0, Addr::base_disp(X, 0), Prec::D));
    a.push(Halt);
    let prog = a.finish();
    let mut cpu = Cpu::new(p4e());
    cpu.set_ireg(X, 0); // below base
    let mut m = Memory::new(4096);
    assert!(matches!(
        cpu.run(&prog, &mut m),
        Err(ifko_xsim::RunError::Fault(_))
    ));
}

#[test]
fn single_precision_vector_arithmetic_uses_f32_rounding() {
    let mut m = Memory::new(1 << 16);
    let x = m.alloc_vector(4, 4);
    let y = m.alloc_vector(4, 4);
    let xs = [0.1f32, 0.2, 0.3, 0.4];
    let ys = [1.0f32, 2.0, 3.0, 4.0];
    m.store_f32_slice(x, &xs).unwrap();
    m.store_f32_slice(y, &ys).unwrap();
    let mut a = Asm::new();
    a.push(VLd(T0, Addr::base(X), Prec::S, true));
    a.push(VMul(T0, RegOrMem::Mem(Addr::base(Y)), Prec::S));
    a.push(VSt(Addr::base(X), T0, Prec::S, true));
    a.push(Halt);
    let mut cpu = Cpu::new(p4e());
    cpu.set_ireg(X, x as i64);
    cpu.set_ireg(Y, y as i64);
    cpu.run(&a.finish(), &mut m).unwrap();
    let got = m.load_f32_slice(x, 4).unwrap();
    for i in 0..4 {
        assert_eq!(got[i], xs[i] * ys[i], "lane {i} must use f32 arithmetic");
    }
}

#[test]
fn mem_operand_form_saves_instructions_and_time_in_cache() {
    // CISC peephole payoff: fmul with memory operand vs separate load+mul.
    let n = 4096usize;
    let fused = ddot_prog(1); // already uses FMul with mem operand
    let mut a = Asm::new();
    a.push(FZero(FReg(7)));
    let top = a.here();
    a.push(FLd(T0, Addr::base(X), Prec::D));
    a.push(FLd(T1, Addr::base(Y), Prec::D));
    a.push(FMul(T0, RegOrMem::Reg(T1), Prec::D));
    a.push(FAdd(FReg(7), RegOrMem::Reg(T0), Prec::D));
    a.push(IAddImm(X, 8));
    a.push(IAddImm(Y, 8));
    a.push(ISubImm(N, 1));
    a.push(ICmpImm(N, 0));
    a.push(Jcc(Cond::Gt, top));
    a.push(Halt);
    let split = a.finish();

    let run = |p: &ifko_xsim::Program| {
        let (mut m, x, y) = mem_with_vec(n);
        let mut cpu = Cpu::new(p4e());
        cpu.preload_all(x, (2 * n * 8) as u64 + 4096);
        cpu.set_ireg(X, x as i64);
        cpu.set_ireg(Y, y as i64);
        cpu.set_ireg(N, n as i64);
        cpu.run(p, &mut m).unwrap()
    };
    let sf = run(&fused);
    let ss = run(&split);
    assert!(sf.insts < ss.insts);
    // The fused form saves decode slots; it must never be meaningfully
    // slower than the split form.
    assert!(
        sf.cycles <= ss.cycles * 101 / 100,
        "fused {} vs split {}",
        sf.cycles,
        ss.cycles
    );
}
