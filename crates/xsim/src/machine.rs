//! Machine configurations.
//!
//! Two configurations mirror the paper's experimental platforms (Table 2):
//! a 2.8 GHz Pentium 4E and a 1.6 GHz Opteron. Parameter values are drawn
//! from the public microarchitectural literature for those parts; they do
//! not need to be exact — what matters for reproducing the paper's *shape*
//! is the relative structure:
//!
//! * P4E: fast clock, long FP latencies, relatively slow bus per cycle
//!   (more bus-bound), a trace cache that keeps wide issue only for loop
//!   bodies that fit, high mispredict penalty, cheap non-temporal stores.
//! * Opteron: slower clock, short FP latencies, more bus headroom per
//!   cycle (so prefetch has more room to help — the paper notes iFKO does
//!   better on the Opteron for exactly this reason), conventional decode,
//!   and **expensive non-temporal stores to cache-resident lines** — the
//!   mechanism behind the paper's icc+prof pathology on swap/axpy.

use crate::bus::BusCfg;
use crate::cache::CacheCfg;
use crate::isa::PrefKind;

/// Full static description of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable name used in reports ("P4E", "Opteron").
    pub name: &'static str,
    /// Core frequency in MHz (used to convert cycles to MFLOPS).
    pub mhz: u64,

    // --- front end / issue ---
    /// Superscalar issue width for loop bodies resident in the loop/trace
    /// buffer.
    pub issue_width: u32,
    /// Maximum loop-body (program) size, in instructions, that sustains
    /// `issue_width`; larger bodies fall back to `decode_width_big`.
    pub loop_buffer_insts: usize,
    /// Issue width once the body exceeds the loop buffer.
    pub decode_width_big: u32,
    /// Out-of-order window depth in cycles: the front end may run at most
    /// this far ahead of the oldest incomplete result. Cache-hit latencies
    /// are hidden inside the window; DRAM misses exceed it and stall.
    pub window_cycles: u64,

    // --- execution latencies (cycles) ---
    pub int_lat: u64,
    pub fadd_lat: u64,
    pub fmul_lat: u64,
    pub fdiv_lat: u64,
    /// Register-to-register FP/vector moves, abs (bitwise ops).
    pub fmov_lat: u64,
    /// comiss/comisd to flags.
    pub fcmp_lat: u64,
    /// Horizontal reduction epilogue (shuffle+add sequence).
    pub hsum_lat: u64,
    /// Broadcast / shuffle.
    pub bcast_lat: u64,
    /// Extra cycles for unaligned vector memory access.
    pub unaligned_penalty: u64,

    // --- branches ---
    /// Mispredict penalty in cycles.
    pub branch_misp: u64,

    // --- memory hierarchy ---
    pub l1: CacheCfg,
    pub l2: CacheCfg,
    /// Extra latency (beyond bus occupancy) for a line to arrive from DRAM.
    pub mem_lat: u64,
    pub bus: BusCfg,
    /// Number of write-combining buffers for non-temporal stores.
    pub wc_buffers: usize,
    /// Penalty in cycles applied to a non-temporal store that hits a line
    /// resident in cache (the operand was read earlier — i.e. not
    /// write-only). Models the Opteron write-combining interaction the
    /// paper describes; zero on the P4E-like machine.
    pub nt_cached_penalty: u64,
    /// Prefetch instruction flavours this machine supports.
    pub prefetch_kinds: &'static [PrefKind],
    /// Whether software prefetches are dropped when the bus is busy
    /// (true on both paper machines; an ablation bench flips it).
    pub drop_prefetch_when_busy: bool,
    /// Backlog tolerance of the prefetch queue, in cycles: a prefetch is
    /// accepted if the bus frees within this window, and dropped only when
    /// the backlog is deeper (bus saturation, as on bus-bound kernels).
    pub pf_queue_slack: u64,
    /// Hardware stream prefetcher: lines fetched ahead on a detected
    /// ascending miss stream (0 disables). Modest on 2005 hardware, and it
    /// cannot cross `hw_prefetch_page` boundaries — software prefetch can,
    /// which is part of why tuned software prefetch still wins.
    pub hw_prefetch_depth: u64,
    /// Page size limiting the hardware prefetcher.
    pub hw_prefetch_page: u64,
}

impl MachineConfig {
    /// Line size of the first prefetchable cache — the paper's `L` used in
    /// the search defaults (`PF dist = 2·L`, `UR = Lₑ`).
    pub fn prefetch_line(&self) -> u64 {
        self.l1.line
    }

    /// The paper's `Lₑ`: elements of `elem_bytes` per L1 line.
    pub fn line_elems(&self, elem_bytes: u64) -> u64 {
        self.l1.line / elem_bytes
    }

    /// Effective issue width for a program of `body` static instructions.
    pub fn effective_width(&self, body: usize) -> u32 {
        if body <= self.loop_buffer_insts {
            self.issue_width
        } else {
            self.decode_width_big
        }
    }
}

/// 2.8 GHz Pentium 4E (Prescott)-like configuration.
pub fn p4e() -> MachineConfig {
    MachineConfig {
        name: "P4E",
        mhz: 2800,
        issue_width: 3,
        loop_buffer_insts: 256,
        decode_width_big: 1,
        window_cycles: 42,
        int_lat: 1,
        fadd_lat: 5,
        fmul_lat: 7,
        fdiv_lat: 32,
        fmov_lat: 1,
        fcmp_lat: 3,
        hsum_lat: 6,
        bcast_lat: 2,
        unaligned_penalty: 6,
        branch_misp: 25,
        l1: CacheCfg {
            size: 16 * 1024,
            line: 64,
            assoc: 8,
            latency: 4,
        },
        l2: CacheCfg {
            size: 1024 * 1024,
            line: 64,
            assoc: 8,
            latency: 22,
        },
        mem_lat: 200,
        wc_buffers: 4,
        // 6.4 GB/s FSB at 2.8 GHz ~= 2.3 bytes per core cycle.
        bus: BusCfg {
            bytes_per_cycle: 2.3,
            turnaround: 12,
            write_queue: 256,
        },
        nt_cached_penalty: 0,
        prefetch_kinds: &[PrefKind::Nta, PrefKind::T0, PrefKind::T1, PrefKind::T2],
        drop_prefetch_when_busy: true,
        pf_queue_slack: 140,
        hw_prefetch_depth: 2,
        hw_prefetch_page: 4096,
    }
}

/// 1.6 GHz Opteron-like configuration.
pub fn opteron() -> MachineConfig {
    MachineConfig {
        name: "Opteron",
        mhz: 1600,
        issue_width: 3,
        loop_buffer_insts: 4096,
        decode_width_big: 3,
        window_cycles: 24,
        int_lat: 1,
        fadd_lat: 4,
        fmul_lat: 4,
        fdiv_lat: 20,
        fmov_lat: 1,
        fcmp_lat: 2,
        hsum_lat: 5,
        bcast_lat: 2,
        unaligned_penalty: 1,
        branch_misp: 11,
        l1: CacheCfg {
            size: 64 * 1024,
            line: 64,
            assoc: 2,
            latency: 3,
        },
        l2: CacheCfg {
            size: 1024 * 1024,
            line: 64,
            assoc: 16,
            latency: 12,
        },
        mem_lat: 110,
        wc_buffers: 4,
        // Integrated controller, DDR333 dual channel ~5.3 GB/s at 1.6 GHz
        // ~= 3.3 bytes per core cycle: slower chip, faster memory access —
        // less bus-bound, as the paper notes.
        bus: BusCfg {
            bytes_per_cycle: 3.3,
            turnaround: 6,
            write_queue: 512,
        },
        nt_cached_penalty: 220,
        prefetch_kinds: &[
            PrefKind::Nta,
            PrefKind::T0,
            PrefKind::T1,
            PrefKind::T2,
            PrefKind::W,
        ],
        drop_prefetch_when_busy: true,
        pf_queue_slack: 100,
        hw_prefetch_depth: 2,
        hw_prefetch_page: 4096,
    }
}

/// All paper machines, for sweeps.
pub fn all_machines() -> Vec<MachineConfig> {
    vec![p4e(), opteron()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_derivable() {
        let m = p4e();
        assert_eq!(m.prefetch_line(), 64);
        // L_e: 8 doubles or 16 singles per line.
        assert_eq!(m.line_elems(8), 8);
        assert_eq!(m.line_elems(4), 16);
    }

    #[test]
    fn p4e_more_bus_bound_than_opteron() {
        assert!(p4e().bus.bytes_per_cycle < opteron().bus.bytes_per_cycle);
    }

    #[test]
    fn opteron_penalizes_nt_to_cached_lines() {
        assert_eq!(p4e().nt_cached_penalty, 0);
        assert!(opteron().nt_cached_penalty > 0);
    }

    #[test]
    fn effective_width_narrows_for_big_bodies() {
        let m = p4e();
        assert_eq!(m.effective_width(100), 3);
        assert_eq!(m.effective_width(1000), 1);
        let o = opteron();
        assert_eq!(o.effective_width(1000), 3);
    }

    #[test]
    fn caches_are_well_formed() {
        for m in all_machines() {
            assert!(m.l1.sets().is_power_of_two());
            assert!(m.l2.sets().is_power_of_two());
            assert_eq!(m.l1.line, m.l2.line);
            assert!(m.prefetch_kinds.contains(&PrefKind::Nta));
        }
    }

    #[test]
    fn opteron_supports_prefetchw() {
        assert!(opteron().prefetch_kinds.contains(&PrefKind::W));
        assert!(!p4e().prefetch_kinds.contains(&PrefKind::W));
    }
}
