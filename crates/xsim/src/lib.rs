//! # ifko-xsim — an executable x86-like machine simulator
//!
//! This crate is the hardware substrate for the iFKO reproduction. The
//! original paper (Whaley & Whalley, ICPP 2005) timed compiled kernels on a
//! 2.8 GHz Pentium 4E and a 1.6 GHz Opteron using cycle-accurate hardware
//! walltimers. Neither machine (nor any 2005-era x86) is available here, so
//! `xsim` provides the closest synthetic equivalent: a small, deterministic,
//! *executable* machine model whose ISA and micro-architecture expose every
//! mechanism the paper's empirical search tunes:
//!
//! * an SSE-style register file (8 XMM registers holding 4×f32 or 2×f64)
//!   next to a small integer file, so SIMD vectorization ([`isa::Inst::VAdd`]
//!   and friends) and register pressure are real;
//! * a two-level set-associative cache hierarchy with a shared memory bus of
//!   finite bandwidth and a read/write turnaround penalty, so prefetch
//!   distance has an interior optimum and bus-bound kernels behave like the
//!   paper's swap/axpy;
//! * software prefetch instructions in the paper's four flavours
//!   (`prefetcht0/t1/t2`, `prefetchnta`, 3DNow! `prefetchw`) that are
//!   **dropped when the bus is busy**, reproducing the paper's observation
//!   that bus-bound operations gain little from prefetch;
//! * non-temporal stores whose cost model differs between the two machine
//!   configurations exactly along the axis the paper describes: cheap on the
//!   P4E-like machine, expensive on the Opteron-like machine whenever the
//!   stored operand was also read (i.e. is not write-only);
//! * an in-order, superscalar issue model with a scoreboard, a loop/trace
//!   buffer whose capacity limits very large unrolled bodies, FP latencies
//!   that make accumulator expansion profitable in-cache, and a 1-bit branch
//!   predictor that penalizes the data-dependent branch in `iamax`.
//!
//! Programs are assembled with [`asm::Asm`], executed with [`cpu::Cpu`]
//! against a [`mem::Memory`], on a [`machine::MachineConfig`] (see
//! [`machine::p4e`] and [`machine::opteron`]). Execution is *functional*
//! (stores really store, dot products really accumulate) **and** *timed*
//! (the run returns simulated cycles plus detailed [`stats::RunStats`]), so
//! the same run is used by the iFKO tester for correctness and by the timer
//! for performance.

pub mod asm;
pub mod bus;
pub mod cache;
pub mod cpu;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod rng;
pub mod stats;

pub use asm::Asm;
pub use cpu::{Cpu, RunError};
pub use isa::{Addr, Cond, FReg, IReg, Inst, Prec, PrefKind, Program, RegOrMem};
pub use machine::{opteron, p4e, MachineConfig};
pub use mem::Memory;
pub use rng::Rng64;
pub use stats::{FeatureVector, RunStats};
