//! A small deterministic PRNG (splitmix64-seeded xoshiro256++) used for
//! workload generation throughout the workspace.
//!
//! The reproduction must build and test **offline**, so it cannot depend
//! on the `rand` crate; every consumer needs nothing beyond seedable,
//! platform-independent, repeatable streams of `f64`/`usize` values, which
//! this provides. The generator is *not* cryptographic and is not meant to
//! be: it exists so that `Workload::generate(n, seed)` yields the same
//! vectors on every machine, forever.

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed the full 256-bit state from one `u64` via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// Uniform in `[0, n)` (n must be > 0) without modulo bias.
    pub fn range_usize(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_in_range_and_well_spread() {
        let mut r = Rng64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_usize_unbiased_bounds() {
        let mut r = Rng64::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.range_usize(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng64::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
