//! Instruction set of the simulated machine.
//!
//! The ISA is deliberately shaped like 32-bit x86 + SSE2/SSE3 as seen by the
//! paper's FKO backend: two-operand arithmetic where the right-hand source
//! may be a memory operand (the CISC feature the paper's peephole pass
//! exploits), eight architectural integer registers, eight 16-byte vector
//! registers, explicit software prefetch instructions and non-temporal
//! stores. It is *not* binary-compatible x86; it is the minimal orthogonal
//! core needed to express every code shape the paper's compiler and the
//! hand-tuned ATLAS kernels generate.

use std::fmt;

/// Number of architectural integer registers (x86-32 has 8; one is the
/// stack pointer in practice, so compilers see ~7 usable).
pub const NUM_IREGS: usize = 8;
/// Number of architectural FP/vector registers (xmm0..xmm7 on x86-32).
pub const NUM_FREGS: usize = 8;

/// An integer register (`r0`..`r7`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IReg(pub u8);

/// An FP/vector register (`x0`..`x7`), 16 bytes wide. Scalar operations use
/// lane 0; vector operations use all lanes for the given precision.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl fmt::Debug for IReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Display for IReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}
impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Floating-point precision: single (`f32`) or double (`f64`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Prec {
    /// Single precision (`f32`): 4 bytes, SIMD vector length 4.
    S,
    /// Double precision (`f64`): 8 bytes, SIMD vector length 2.
    D,
}

impl Prec {
    /// Bytes per scalar element.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Prec::S => 4,
            Prec::D => 8,
        }
    }
    /// SIMD vector length (elements per 16-byte register).
    #[inline]
    pub fn veclen(self) -> u64 {
        match self {
            Prec::S => 4,
            Prec::D => 2,
        }
    }
    /// One-letter BLAS prefix (`s` / `d`).
    pub fn blas_char(self) -> char {
        match self {
            Prec::S => 's',
            Prec::D => 'd',
        }
    }
}

/// A memory address: `base + index*scale + disp`, like an x86 effective
/// address. `index` is optional; `scale` is 1, 2, 4 or 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Addr {
    pub base: IReg,
    pub index: Option<(IReg, u8)>,
    pub disp: i64,
}

impl Addr {
    /// `[base]`
    pub fn base(base: IReg) -> Self {
        Addr {
            base,
            index: None,
            disp: 0,
        }
    }
    /// `[base + disp]`
    pub fn base_disp(base: IReg, disp: i64) -> Self {
        Addr {
            base,
            index: None,
            disp,
        }
    }
    /// `[base + index*scale + disp]`
    pub fn base_index(base: IReg, index: IReg, scale: u8, disp: i64) -> Self {
        debug_assert!(matches!(scale, 1 | 2 | 4 | 8));
        Addr {
            base,
            index: Some((index, scale)),
            disp,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some((idx, sc)) = self.index {
            write!(f, "+{}*{}", idx, sc)?;
        }
        if self.disp != 0 {
            write!(f, "{:+}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// Right-hand source of a two-operand FP/vector arithmetic instruction:
/// either a register or a memory operand (the x86 CISC form the paper's
/// peephole optimization produces, e.g. `addsd (%eax), %xmm0`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RegOrMem {
    Reg(FReg),
    Mem(Addr),
}

impl fmt::Display for RegOrMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegOrMem::Reg(r) => write!(f, "{}", r),
            RegOrMem::Mem(a) => write!(f, "{}", a),
        }
    }
}

/// Branch conditions over the (signed) flags set by `ICmp*`, `IDec`,
/// `ITest` and `FCmp`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Evaluate the condition against a three-way comparison result
    /// (`ord < 0` means "left < right").
    #[inline]
    pub fn eval(self, ord: i32) -> bool {
        match self {
            Cond::Eq => ord == 0,
            Cond::Ne => ord != 0,
            Cond::Lt => ord < 0,
            Cond::Le => ord <= 0,
            Cond::Gt => ord > 0,
            Cond::Ge => ord >= 0,
        }
    }
}

/// Software prefetch flavours available on the simulated machines,
/// matching the paper's Table 3 abbreviations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PrefKind {
    /// `prefetcht0`: temporal prefetch into L1 (and L2).
    T0,
    /// `prefetcht1`: temporal prefetch into L2 only.
    T1,
    /// `prefetcht2`: like T1 on two-level machines.
    T2,
    /// `prefetchnta`: non-temporal prefetch into the cache level nearest the
    /// CPU without polluting outer levels.
    Nta,
    /// 3DNow! `prefetchw`: prefetch with intent to write (line arrives in
    /// modified state, so the later store needs no read-for-ownership).
    W,
}

impl PrefKind {
    /// Table-3 style abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            PrefKind::T0 => "t0",
            PrefKind::T1 => "t1",
            PrefKind::T2 => "t2",
            PrefKind::Nta => "nta",
            PrefKind::W => "w",
        }
    }
}

/// Label used by branches; resolved to an instruction index at assembly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(pub u32);

/// A machine instruction.
///
/// Two-operand arithmetic follows the x86 convention `dst = dst op src`.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    // ---- integer ----
    /// `dst = imm`
    IMovImm(IReg, i64),
    /// `dst = src`
    IMov(IReg, IReg),
    /// `dst += src`
    IAdd(IReg, IReg),
    /// `dst += imm`
    IAddImm(IReg, i64),
    /// `dst -= src`
    ISub(IReg, IReg),
    /// `dst -= imm`
    ISubImm(IReg, i64),
    /// `dst <<= imm`
    IShlImm(IReg, u8),
    /// `dst /= imm` (signed; used for trip-count computation)
    IDivImm(IReg, i64),
    /// `dst %= imm`
    IRemImm(IReg, i64),
    /// `dst = effective address` (x86 `lea`)
    Lea(IReg, Addr),
    /// compare `a ? b`, set flags
    ICmp(IReg, IReg),
    /// compare `a ? imm`, set flags
    ICmpImm(IReg, i64),
    /// `dst -= 1`, set flags (models `dec` / `sub $1` loop control)
    IDec(IReg),
    /// integer load (8 bytes)
    ILoad(IReg, Addr),
    /// integer store (8 bytes)
    IStore(Addr, IReg),

    // ---- control flow ----
    /// unconditional jump
    Jmp(Label),
    /// conditional jump on integer/FP flags
    Jcc(Cond, Label),
    /// stop execution
    Halt,

    // ---- FP scalar (lane 0) ----
    /// scalar load into lane 0 (`movss`/`movsd`)
    FLd(FReg, Addr, Prec),
    /// scalar store from lane 0
    FSt(Addr, FReg, Prec),
    /// scalar non-temporal store from lane 0 (models `movnti`-style streaming)
    FStNt(Addr, FReg, Prec),
    /// `dst = src` (register move)
    FMov(FReg, FReg, Prec),
    /// load immediate into lane 0 (stands in for a PC-relative constant load)
    FLdImm(FReg, f64, Prec),
    /// zero the whole register (`xorps x,x`)
    FZero(FReg),
    /// `dst += src`
    FAdd(FReg, RegOrMem, Prec),
    /// `dst -= src`
    FSub(FReg, RegOrMem, Prec),
    /// `dst *= src`
    FMul(FReg, RegOrMem, Prec),
    /// `dst /= src`
    FDiv(FReg, RegOrMem, Prec),
    /// `dst = |dst|` (models `andps` with a sign mask)
    FAbs(FReg, Prec),
    /// `dst = sqrt(dst)` (`sqrtss`/`sqrtsd`)
    FSqrt(FReg, Prec),
    /// `dst = max(dst, src)`
    FMax(FReg, RegOrMem, Prec),
    /// compare lane 0 of `a` with `b`, set flags (`comiss`/`comisd`)
    FCmp(FReg, RegOrMem, Prec),

    // ---- vector (all lanes) ----
    /// aligned vector load (`movaps`); `aligned=false` is `movups` (slower)
    VLd(FReg, Addr, Prec, bool),
    /// aligned vector store
    VSt(Addr, FReg, Prec, bool),
    /// non-temporal vector store (`movntps`/`movntpd`)
    VStNt(Addr, FReg, Prec),
    /// `dst = src` whole register
    VMov(FReg, FReg),
    /// broadcast lane 0 of `src` to all lanes of `dst` (`shufps`/`movddup`)
    VBcast(FReg, FReg, Prec),
    /// `dst += src` lanewise
    VAdd(FReg, RegOrMem, Prec),
    /// `dst -= src` lanewise
    VSub(FReg, RegOrMem, Prec),
    /// `dst *= src` lanewise
    VMul(FReg, RegOrMem, Prec),
    /// `dst = |dst|` lanewise
    VAbs(FReg, Prec),
    /// `dst = max(dst, src)` lanewise
    VMax(FReg, RegOrMem, Prec),
    /// lanewise `dst = (dst > src) ? all-ones : 0` (`cmpps`)
    VCmpGt(FReg, RegOrMem, Prec),
    /// move sign-bit mask of each lane into an integer register and set
    /// flags from the result (`movmskps` + `test`)
    VMovMsk(IReg, FReg, Prec),
    /// horizontal reduction of all lanes of `src` into lane 0 of `dst`
    /// (models the `haddps`/shuffle epilogue after a vectorized reduction)
    VHSum(FReg, FReg, Prec),
    /// horizontal max of all lanes of `src` into lane 0 of `dst`
    VHMax(FReg, FReg, Prec),

    // ---- memory hints ----
    /// software prefetch of the line containing the address; silently
    /// dropped by the hardware when the memory bus is busy
    Prefetch(Addr, PrefKind),
}

impl Inst {
    /// True for instructions that read or write data memory (prefetches are
    /// hints, not accesses).
    pub fn is_mem_access(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            ILoad(..)
                | IStore(..)
                | FLd(..)
                | FSt(..)
                | FStNt(..)
                | VLd(..)
                | VSt(..)
                | VStNt(..)
                | FAdd(_, RegOrMem::Mem(_), _)
                | FSub(_, RegOrMem::Mem(_), _)
                | FMul(_, RegOrMem::Mem(_), _)
                | FDiv(_, RegOrMem::Mem(_), _)
                | FMax(_, RegOrMem::Mem(_), _)
                | FCmp(_, RegOrMem::Mem(_), _)
                | VAdd(_, RegOrMem::Mem(_), _)
                | VSub(_, RegOrMem::Mem(_), _)
                | VMul(_, RegOrMem::Mem(_), _)
                | VMax(_, RegOrMem::Mem(_), _)
                | VCmpGt(_, RegOrMem::Mem(_), _)
        )
    }

    /// True for stores (normal or non-temporal).
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Inst::IStore(..) | Inst::FSt(..) | Inst::FStNt(..) | Inst::VSt(..) | Inst::VStNt(..)
        )
    }
}

/// An assembled program: a flat instruction sequence plus resolved label
/// targets (`labels[l]` is the instruction index label `l` points to).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub insts: Vec<Inst>,
    pub labels: Vec<usize>,
}

impl Program {
    /// Instruction count (static size of the program).
    pub fn len(&self) -> usize {
        self.insts.len()
    }
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
    /// Resolve a label to its instruction index.
    #[inline]
    pub fn target(&self, l: Label) -> usize {
        self.labels[l.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prec_properties() {
        assert_eq!(Prec::S.bytes(), 4);
        assert_eq!(Prec::D.bytes(), 8);
        assert_eq!(Prec::S.veclen(), 4);
        assert_eq!(Prec::D.veclen(), 2);
        assert_eq!(Prec::S.bytes() * Prec::S.veclen(), 16);
        assert_eq!(Prec::D.bytes() * Prec::D.veclen(), 16);
        assert_eq!(Prec::S.blas_char(), 's');
        assert_eq!(Prec::D.blas_char(), 'd');
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(0));
        assert!(!Cond::Eq.eval(1));
        assert!(Cond::Ne.eval(-1));
        assert!(Cond::Lt.eval(-1));
        assert!(!Cond::Lt.eval(0));
        assert!(Cond::Le.eval(0));
        assert!(Cond::Gt.eval(2));
        assert!(Cond::Ge.eval(0));
        assert!(!Cond::Ge.eval(-3));
    }

    #[test]
    fn addr_display() {
        let a = Addr::base_index(IReg(1), IReg(2), 8, -16);
        assert_eq!(a.to_string(), "[r1+r2*8-16]");
        let b = Addr::base(IReg(0));
        assert_eq!(b.to_string(), "[r0]");
    }

    #[test]
    fn mem_access_classification() {
        assert!(Inst::FLd(FReg(0), Addr::base(IReg(0)), Prec::D).is_mem_access());
        assert!(Inst::FAdd(FReg(0), RegOrMem::Mem(Addr::base(IReg(0))), Prec::D).is_mem_access());
        assert!(!Inst::FAdd(FReg(0), RegOrMem::Reg(FReg(1)), Prec::D).is_mem_access());
        assert!(!Inst::Prefetch(Addr::base(IReg(0)), PrefKind::Nta).is_mem_access());
        assert!(Inst::VStNt(Addr::base(IReg(0)), FReg(0), Prec::S).is_store());
        assert!(!Inst::FLd(FReg(0), Addr::base(IReg(0)), Prec::D).is_store());
    }

    #[test]
    fn prefkind_abbrevs_match_paper_table3() {
        assert_eq!(PrefKind::Nta.abbrev(), "nta");
        assert_eq!(PrefKind::T0.abbrev(), "t0");
        assert_eq!(PrefKind::W.abbrev(), "w");
    }
}
