//! Flat byte-addressable data memory with a bump allocator.
//!
//! Kernel operands (vectors, scalars spilled to stack) live here. Addresses
//! are plain `u64` offsets from a nonzero base so that accidental
//! null-pointer style bugs in generated code trap instead of silently
//! reading byte 0.

/// Default base address of the allocatable region. Chosen to be
/// page- and line-aligned and nonzero.
pub const DEFAULT_BASE: u64 = 0x1_0000;

/// Simulated data memory.
#[derive(Clone, Debug)]
pub struct Memory {
    base: u64,
    bytes: Vec<u8>,
    next: u64,
}

/// Errors raised by out-of-range accesses from simulated code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    pub addr: u64,
    pub len: u64,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory fault at 0x{:x} (len {})", self.addr, self.len)
    }
}
impl std::error::Error for MemFault {}

impl Memory {
    /// Create a memory with `capacity` allocatable bytes.
    pub fn new(capacity: usize) -> Self {
        Memory {
            base: DEFAULT_BASE,
            bytes: vec![0; capacity],
            next: DEFAULT_BASE,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// First valid address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Allocate `len` bytes aligned to `align` (power of two); returns the
    /// address. Panics if the region is exhausted — allocation happens at
    /// harness setup time, not inside simulated code.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        let end = addr + len;
        assert!(
            end - self.base <= self.bytes.len() as u64,
            "xsim memory exhausted: need {} bytes past 0x{:x}",
            len,
            addr
        );
        self.next = end;
        addr
    }

    /// Allocate and zero-fill a vector of `n` elements of `elem_bytes`,
    /// aligned to 16 bytes (SIMD) by default.
    pub fn alloc_vector(&mut self, n: u64, elem_bytes: u64) -> u64 {
        self.alloc(n * elem_bytes, 64)
    }

    #[inline]
    fn offset(&self, addr: u64, len: u64) -> Result<usize, MemFault> {
        if addr < self.base || addr + len > self.base + self.bytes.len() as u64 {
            return Err(MemFault { addr, len });
        }
        Ok((addr - self.base) as usize)
    }

    /// Read `N` bytes.
    #[inline]
    pub fn read<const N: usize>(&self, addr: u64) -> Result<[u8; N], MemFault> {
        let off = self.offset(addr, N as u64)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[off..off + N]);
        Ok(out)
    }

    /// Write `N` bytes.
    #[inline]
    pub fn write<const N: usize>(&mut self, addr: u64, val: [u8; N]) -> Result<(), MemFault> {
        let off = self.offset(addr, N as u64)?;
        self.bytes[off..off + N].copy_from_slice(&val);
        Ok(())
    }

    #[inline]
    pub fn read_f32(&self, addr: u64) -> Result<f32, MemFault> {
        Ok(f32::from_le_bytes(self.read::<4>(addr)?))
    }
    #[inline]
    pub fn read_f64(&self, addr: u64) -> Result<f64, MemFault> {
        Ok(f64::from_le_bytes(self.read::<8>(addr)?))
    }
    #[inline]
    pub fn read_i64(&self, addr: u64) -> Result<i64, MemFault> {
        Ok(i64::from_le_bytes(self.read::<8>(addr)?))
    }
    #[inline]
    pub fn write_f32(&mut self, addr: u64, v: f32) -> Result<(), MemFault> {
        self.write(addr, v.to_le_bytes())
    }
    #[inline]
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), MemFault> {
        self.write(addr, v.to_le_bytes())
    }
    #[inline]
    pub fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), MemFault> {
        self.write(addr, v.to_le_bytes())
    }

    /// Copy an `f64` slice into memory at `addr`.
    pub fn store_f64_slice(&mut self, addr: u64, data: &[f64]) -> Result<(), MemFault> {
        for (i, &v) in data.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, v)?;
        }
        Ok(())
    }

    /// Copy an `f32` slice into memory at `addr`.
    pub fn store_f32_slice(&mut self, addr: u64, data: &[f32]) -> Result<(), MemFault> {
        for (i, &v) in data.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, v)?;
        }
        Ok(())
    }

    /// Read `n` f64 values starting at `addr`.
    pub fn load_f64_slice(&self, addr: u64, n: usize) -> Result<Vec<f64>, MemFault> {
        (0..n).map(|i| self.read_f64(addr + 8 * i as u64)).collect()
    }

    /// Read `n` f32 values starting at `addr`.
    pub fn load_f32_slice(&self, addr: u64, n: usize) -> Result<Vec<f32>, MemFault> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// Reset the allocator (keeps capacity, zeroes nothing).
    pub fn reset_alloc(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_alignment_and_progress() {
        let mut m = Memory::new(1 << 16);
        let a = m.alloc(10, 64);
        assert_eq!(a % 64, 0);
        let b = m.alloc(1, 16);
        assert!(b >= a + 10);
        assert_eq!(b % 16, 0);
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = Memory::new(4096);
        let a = m.alloc(64, 64);
        m.write_f64(a, 3.25).unwrap();
        m.write_f32(a + 8, -1.5).unwrap();
        m.write_i64(a + 16, -42).unwrap();
        assert_eq!(m.read_f64(a).unwrap(), 3.25);
        assert_eq!(m.read_f32(a + 8).unwrap(), -1.5);
        assert_eq!(m.read_i64(a + 16).unwrap(), -42);
    }

    #[test]
    fn slice_roundtrip() {
        let mut m = Memory::new(4096);
        let a = m.alloc_vector(8, 8);
        let data: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        m.store_f64_slice(a, &data).unwrap();
        assert_eq!(m.load_f64_slice(a, 8).unwrap(), data);
    }

    #[test]
    fn fault_below_base_and_past_end() {
        let m = Memory::new(64);
        assert!(m.read_f64(0).is_err());
        assert!(m.read_f64(DEFAULT_BASE + 60).is_err());
        assert!(m.read_f64(DEFAULT_BASE + 56).is_ok());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_exhaustion_panics() {
        let mut m = Memory::new(128);
        m.alloc(256, 8);
    }
}
