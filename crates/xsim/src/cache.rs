//! Set-associative cache model with LRU replacement and in-flight fills.
//!
//! Each line records the cycle at which its fill completes, so a software
//! prefetch issued too close to the demand access yields only a *partial*
//! latency hiding — this is what gives prefetch distance its interior
//! optimum in the empirical search (too small: fill not complete; too
//! large: line evicted again before use in a small L1).

/// Static configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheCfg {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (ways per set).
    pub assoc: u64,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheCfg {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (self.line * self.assoc)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (larger = more recently used).
    lru: u64,
    /// Cycle at which the line's fill completes (0 if long resident).
    fill_done: u64,
}

/// Result of probing a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Line present; data available at `max(now, fill_done)`.
    Hit {
        fill_done: u64,
    },
    Miss,
}

/// A line evicted by an insertion; dirty lines must be written back by the
/// caller (they cost bus bandwidth).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    pub addr: u64,
    pub dirty: bool,
}

/// One level of set-associative cache.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheCfg,
    sets: u64,
    lines: Vec<Line>,
    tick: u64,
}

impl Cache {
    pub fn new(cfg: CacheCfg) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two: {:?}",
            cfg
        );
        assert!(cfg.line.is_power_of_two());
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); (sets * cfg.assoc) as usize],
            tick: 0,
        }
    }

    pub fn cfg(&self) -> &CacheCfg {
        &self.cfg
    }

    #[inline]
    fn index(&self, addr: u64) -> (u64, u64) {
        let lineno = addr / self.cfg.line;
        let set = lineno & (self.sets - 1);
        let tag = lineno >> self.sets.trailing_zeros();
        (set, tag)
    }

    #[inline]
    fn set_slice(&mut self, set: u64) -> &mut [Line] {
        let a = (set * self.cfg.assoc) as usize;
        let b = a + self.cfg.assoc as usize;
        &mut self.lines[a..b]
    }

    /// Probe for the line containing `addr`; updates LRU on hit.
    pub fn probe(&mut self, addr: u64) -> Probe {
        let (set, tag) = self.index(addr);
        self.tick += 1;
        let tick = self.tick;
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                l.lru = tick;
                return Probe::Hit {
                    fill_done: l.fill_done,
                };
            }
        }
        Probe::Miss
    }

    /// Probe without disturbing LRU state (used by the harness/tests).
    pub fn peek(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let a = (set * self.cfg.assoc) as usize;
        self.lines[a..a + self.cfg.assoc as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Insert the line containing `addr`, with its fill completing at
    /// `fill_done`. Returns the victim if a valid line was evicted.
    pub fn insert(&mut self, addr: u64, fill_done: u64, dirty: bool) -> Option<Evicted> {
        let (set, tag) = self.index(addr);
        self.tick += 1;
        let tick = self.tick;
        let line_bytes = self.cfg.line;
        let sets = self.sets;
        let set_bits = sets.trailing_zeros() as u64;
        let slice = self.set_slice(set);
        // Already present (e.g. prefetch raced a demand fill): refresh.
        if let Some(l) = slice.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = tick;
            l.dirty |= dirty;
            l.fill_done = l.fill_done.min(fill_done);
            return None;
        }
        // Choose victim: invalid first, else LRU.
        let victim = slice
            .iter_mut()
            .min_by_key(|l| if l.valid { (1, l.lru) } else { (0, 0) })
            .expect("assoc >= 1");
        let evicted = if victim.valid {
            let old_lineno = (victim.tag << set_bits) | set;
            Some(Evicted {
                addr: old_lineno * line_bytes,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        *victim = Line {
            tag,
            valid: true,
            dirty,
            lru: tick,
            fill_done,
        };
        evicted
    }

    /// Mark the line containing `addr` dirty (if present). Returns whether
    /// the line was present.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.tick += 1;
        let tick = self.tick;
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                l.dirty = true;
                l.lru = tick;
                return true;
            }
        }
        false
    }

    /// Invalidate the line containing `addr` (non-temporal store semantics).
    /// Returns the evicted line if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<Evicted> {
        let (set, tag) = self.index(addr);
        let line_bytes = self.cfg.line;
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                let dirty = l.dirty;
                l.valid = false;
                l.dirty = false;
                let _ = line_bytes;
                return Some(Evicted {
                    addr: addr / line_bytes * line_bytes,
                    dirty,
                });
            }
        }
        None
    }

    /// Drop all contents (cold-cache setup for out-of-cache timings).
    pub fn flush_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
        self.tick = 0;
    }

    /// Number of valid lines (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheCfg {
            size: 512,
            line: 64,
            assoc: 2,
            latency: 3,
        })
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert_eq!(c.probe(0x1000), Probe::Miss);
        c.insert(0x1000, 100, false);
        assert!(matches!(c.probe(0x1000), Probe::Hit { fill_done: 100 }));
        // Same line, different offset.
        assert!(matches!(c.probe(0x103f), Probe::Hit { .. }));
        // Next line misses.
        assert_eq!(c.probe(0x1040), Probe::Miss);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 lines * 64B = 256B).
        c.insert(0x0000, 0, false);
        c.insert(0x0100, 0, false);
        // Touch the first so the second is LRU.
        c.probe(0x0000);
        let ev = c.insert(0x0200, 0, false).expect("eviction");
        assert_eq!(ev.addr, 0x0100);
        assert!(!ev.dirty);
        assert!(c.peek(0x0000));
        assert!(!c.peek(0x0100));
        assert!(c.peek(0x0200));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.insert(0x0000, 0, false);
        assert!(c.mark_dirty(0x0008));
        c.insert(0x0100, 0, false);
        let ev = c.insert(0x0200, 0, false).unwrap();
        assert!(ev.dirty, "dirty victim must be reported for writeback");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.insert(0x0000, 0, true);
        let ev = c.invalidate(0x0010).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.addr, 0x0000);
        assert_eq!(c.probe(0x0000), Probe::Miss);
        assert!(c.invalidate(0x0000).is_none());
    }

    #[test]
    fn reinsert_refreshes_fill_time() {
        let mut c = tiny();
        c.insert(0x0000, 500, false);
        c.insert(0x0000, 200, true);
        match c.probe(0x0000) {
            Probe::Hit { fill_done } => assert_eq!(fill_done, 200),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn flush_all_empties() {
        let mut c = tiny();
        c.insert(0x0000, 0, false);
        c.insert(0x0040, 0, false);
        assert_eq!(c.resident_lines(), 2);
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.probe(0x0000), Probe::Miss);
    }

    #[test]
    fn sets_computed() {
        let cfg = CacheCfg {
            size: 16 * 1024,
            line: 64,
            assoc: 8,
            latency: 4,
        };
        assert_eq!(cfg.sets(), 32);
    }
}
