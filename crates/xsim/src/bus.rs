//! Front-side memory bus model.
//!
//! A single shared channel between the cache hierarchy and DRAM with finite
//! bandwidth (`bytes_per_cycle`). **Reads are demand-prioritized; writes are
//! buffered**: writebacks, read-for-ownership writeback halves and
//! non-temporal write-combine flushes enter a write queue that drains in bus
//! idle gaps. A read only pays for writes when the queue is over capacity
//! (it must partially drain first, plus a direction-turnaround penalty, as
//! on a real DRAM bus). This is what makes batching reads apart from writes
//! (the ATLAS "block fetch" dcopy technique, Wall, AMD tech report)
//! profitable, while keeping write-heavy streams from starving demand
//! reads.
//!
//! The *busy* predicate (`effective_free`) counts both the in-flight
//! transfer and the write backlog; it is used to drop software prefetches —
//! the paper's explanation for why bus-bound kernels (swap, axpy) gain
//! little from prefetch is that "many architectures discard prefetches when
//! they are issued while the bus is busy".

/// Direction of a bus transfer (kept for statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    Read,
    Write,
}

/// Configuration of the bus.
#[derive(Clone, Copy, Debug)]
pub struct BusCfg {
    /// Sustained bandwidth in bytes per core cycle.
    pub bytes_per_cycle: f64,
    /// Extra cycles when a read forces the write queue to drain
    /// (direction turnaround).
    pub turnaround: u64,
    /// Write-queue capacity in bytes; writes beyond this stall reads.
    pub write_queue: u64,
}

/// The bus: tracks when the read channel frees and the buffered write
/// backlog.
#[derive(Clone, Debug)]
pub struct Bus {
    cfg: BusCfg,
    free_at: u64,
    /// Bytes of buffered writes not yet on the wire.
    backlog: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl Bus {
    pub fn new(cfg: BusCfg) -> Self {
        assert!(cfg.bytes_per_cycle > 0.0);
        Bus {
            cfg,
            free_at: 0,
            backlog: 0,
            bytes_read: 0,
            bytes_written: 0,
        }
    }

    pub fn cfg(&self) -> &BusCfg {
        &self.cfg
    }

    #[inline]
    fn cycles_for(&self, bytes: u64) -> u64 {
        ((bytes as f64 / self.cfg.bytes_per_cycle).ceil() as u64).max(1)
    }

    /// Let the write backlog drain through any idle gap ending at `now`.
    #[inline]
    fn drain_idle(&mut self, now: u64) {
        if now > self.free_at && self.backlog > 0 {
            let idle = now - self.free_at;
            let can_drain = (idle as f64 * self.cfg.bytes_per_cycle) as u64;
            if can_drain >= self.backlog {
                self.free_at += self.cycles_for(self.backlog);
                self.backlog = 0;
            } else {
                // The bus wrote for the whole gap and still has backlog.
                self.backlog -= can_drain;
                self.free_at = now;
            }
        }
    }

    /// Cycle at which all current commitments (in-flight transfer plus
    /// write backlog) are done — the "busy horizon" used for prefetch
    /// dropping.
    pub fn effective_free(&self, now: u64) -> u64 {
        let mut horizon = self.free_at;
        if self.backlog > 0 {
            horizon += self.cycles_for(self.backlog);
        }
        horizon.max(now)
    }

    /// Raw read-channel availability.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Is the bus occupied at `now` (including write backlog)?
    pub fn busy(&self, now: u64) -> bool {
        self.effective_free(now) > now
    }

    /// A demand (or prefetch) read of `bytes` starting no earlier than
    /// `now`. Returns `(start, done)`.
    pub fn read(&mut self, now: u64, bytes: u64) -> (u64, u64) {
        self.drain_idle(now);
        let mut start = self.free_at.max(now);
        if self.backlog > self.cfg.write_queue {
            // Over-capacity: the queue must drain down before the read.
            let excess = self.backlog - self.cfg.write_queue;
            start += self.cycles_for(excess) + self.cfg.turnaround;
            self.backlog = self.cfg.write_queue;
        }
        let done = start + self.cycles_for(bytes);
        self.free_at = done;
        self.bytes_read += bytes;
        (start, done)
    }

    /// Buffer a write of `bytes` (writeback or write-combine flush). Writes
    /// drain in idle gaps and never directly stall the requester.
    pub fn write(&mut self, now: u64, bytes: u64) {
        self.drain_idle(now);
        self.backlog += bytes;
        self.bytes_written += bytes;
    }

    /// Compatibility entry point dispatching on direction.
    pub fn request(&mut self, now: u64, dir: Dir, bytes: u64) -> (u64, u64) {
        match dir {
            Dir::Read => self.read(now, bytes),
            Dir::Write => {
                self.write(now, bytes);
                (now, now)
            }
        }
    }

    /// Finish all outstanding traffic (used at Halt): returns the cycle at
    /// which the bus is fully drained.
    pub fn drain_all(&mut self, now: u64) -> u64 {
        self.drain_idle(now);
        let mut done = self.free_at.max(now);
        if self.backlog > 0 {
            done = self.free_at + self.cycles_for(self.backlog);
            self.backlog = 0;
        }
        self.free_at = done;
        done
    }

    /// Reset occupancy and statistics (new timing run).
    pub fn reset(&mut self) {
        self.free_at = 0;
        self.backlog = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus(bpc: f64, ta: u64, wq: u64) -> Bus {
        Bus::new(BusCfg {
            bytes_per_cycle: bpc,
            turnaround: ta,
            write_queue: wq,
        })
    }

    #[test]
    fn reads_serialize() {
        let mut b = bus(2.0, 0, 256);
        let (s1, d1) = b.read(0, 64);
        assert_eq!((s1, d1), (0, 32));
        let (s2, d2) = b.read(0, 64);
        assert_eq!(s2, 32);
        assert_eq!(d2, 64);
    }

    #[test]
    fn writes_do_not_stall_reads_under_capacity() {
        let mut b = bus(2.0, 10, 256);
        b.write(0, 64);
        b.write(0, 64);
        let (s, _) = b.read(0, 64);
        assert_eq!(s, 0, "buffered writes must not delay the read");
    }

    #[test]
    fn over_capacity_writes_stall_reads_with_turnaround() {
        let mut b = bus(2.0, 10, 128);
        for _ in 0..4 {
            b.write(0, 64); // backlog 256 > 128
        }
        let (s, _) = b.read(0, 64);
        // Excess 128 bytes drain at 2 B/c = 64 cycles, plus 10 turnaround.
        assert_eq!(s, 74);
    }

    #[test]
    fn backlog_drains_in_idle_gaps() {
        let mut b = bus(2.0, 10, 128);
        for _ in 0..4 {
            b.write(0, 64);
        }
        // Long idle: backlog fully drains, read is immediate.
        let (s, _) = b.read(10_000, 64);
        assert_eq!(s, 10_000);
    }

    #[test]
    fn busy_accounts_for_backlog() {
        let mut b = bus(1.0, 0, 1024);
        assert!(!b.busy(0));
        b.write(0, 100);
        assert!(b.busy(0), "write backlog counts toward busy horizon");
        assert!(!b.busy(200));
    }

    #[test]
    fn effective_free_monotone_with_backlog() {
        let mut b = bus(2.0, 0, 1024);
        let f0 = b.effective_free(0);
        b.write(0, 256);
        assert!(b.effective_free(0) > f0);
    }

    #[test]
    fn drain_all_flushes_backlog() {
        let mut b = bus(2.0, 0, 1024);
        b.write(0, 128);
        let done = b.drain_all(0);
        assert_eq!(done, 64);
        assert!(!b.busy(done));
    }

    #[test]
    fn stats_and_reset() {
        let mut b = bus(2.0, 0, 256);
        b.read(0, 64);
        b.write(0, 32);
        assert_eq!(b.bytes_read, 64);
        assert_eq!(b.bytes_written, 32);
        b.reset();
        assert_eq!(b.bytes_read, 0);
        assert!(!b.busy(0));
    }

    #[test]
    fn request_dispatches_by_direction() {
        let mut b = bus(2.0, 0, 256);
        let (_, d) = b.request(0, Dir::Read, 64);
        assert_eq!(d, 32);
        b.request(0, Dir::Write, 64);
        assert_eq!(b.bytes_written, 64);
    }
}
