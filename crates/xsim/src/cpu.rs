//! The simulated processor: a functional interpreter with cycle accounting.
//!
//! Execution is in-order superscalar with a register scoreboard: each
//! instruction issues at `max(next issue slot, all source operands ready)`
//! and its destination becomes ready after the operation latency (memory
//! latencies come from the cache/bus model). This is simpler than the
//! out-of-order cores it models, but it is the *same* model for every code
//! generator being compared (FKO, the gcc/icc models, the hand-tuned ATLAS
//! kernels), so relative results — which is all the paper's figures report —
//! are meaningful. Crucially, the model is sensitive to exactly the
//! transformations the paper tunes: dependent FP adds serialize on
//! `fadd_lat` (accumulator expansion), loop overhead consumes issue slots
//! (unrolling, loop control), prefetches hide `mem_lat` only when issued
//! early enough and are dropped when the bus is busy, and non-temporal
//! stores change bus traffic and (on the Opteron-like config) penalize
//! read-write operands.

use crate::bus::Bus;
use crate::cache::{Cache, Probe};
use crate::isa::*;
use crate::machine::MachineConfig;
use crate::mem::{MemFault, Memory};
use crate::stats::RunStats;

/// Errors raised during simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// Out-of-range data access.
    Fault(MemFault),
    /// Instruction budget exhausted (runaway loop in generated code).
    InstLimit { limit: u64 },
    /// Fell off the end of the program without `Halt`.
    RanOffEnd,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Fault(m) => write!(f, "{m}"),
            RunError::InstLimit { limit } => {
                write!(f, "instruction limit ({limit}) exceeded — runaway loop?")
            }
            RunError::RanOffEnd => write!(f, "execution ran past the end of the program"),
        }
    }
}
impl std::error::Error for RunError {}

impl From<MemFault> for RunError {
    fn from(m: MemFault) -> Self {
        RunError::Fault(m)
    }
}

/// Default dynamic instruction budget.
pub const DEFAULT_INST_LIMIT: u64 = 500_000_000;

/// The simulated CPU. Construct once per machine; caches persist across
/// [`Cpu::run`] calls so the harness can model in-cache and out-of-cache
/// contexts ([`Cpu::flush_caches`], [`Cpu::preload_l2`]).
pub struct Cpu {
    cfg: MachineConfig,
    l1: Cache,
    l2: Cache,
    bus: Bus,

    iregs: [i64; NUM_IREGS],
    fregs: [[u8; 16]; NUM_FREGS],
    ireg_ready: [u64; NUM_IREGS],
    freg_ready: [u64; NUM_FREGS],
    /// Flags as a three-way ordering (-1, 0, 1) plus readiness.
    flags: i32,
    flags_ready: u64,

    cycle: u64,
    slots: u32,
    width: u32,

    /// 1-bit dynamic branch predictor, indexed by instruction address.
    predictor: Vec<u8>,
    /// Write-combining buffers for non-temporal stores: (line addr,
    /// bytes) per buffer, FIFO-evicted. x86 provides several, so multiple
    /// interleaved NT store streams (e.g. swap's X and Y) each fill whole
    /// lines before flushing.
    wc: Vec<(u64, u64)>,
    /// Hardware stream prefetcher state: per-stream frontier line address
    /// (`u64::MAX` = free slot) and a small recent-miss table used for
    /// stream detection (two consecutive line misses start a stream).
    hw_streams: [u64; 4],
    hw_misses: [u64; 8],
    hw_next: usize,

    /// Reusable predecode buffer: [`run`](Cpu::run) lowers the program
    /// into dense [`DInst`]s here, so back-to-back runs (the timer's
    /// repetitions) reuse the allocation.
    decoded: Vec<DInst>,

    pub stats: RunStats,
    inst_limit: u64,
}

const PRED_UNSEEN: u8 = 2;

/// Arithmetic opcode of a folded two-operand FP/vector instruction.
#[derive(Clone, Copy)]
enum AOp {
    Add,
    Sub,
    Mul,
    Div,
    Max,
}

/// One predecoded instruction: a dense `Copy` mirror of [`Inst`] with the
/// per-step interpretive work hoisted to decode time — branch targets are
/// resolved to instruction indices, the static (unseen) branch prediction
/// is precomputed per site, and the five two-operand arithmetic variants
/// are folded behind an [`AOp`] opcode so the interpreter matches each
/// instruction exactly once per step.
#[derive(Clone, Copy)]
enum DInst {
    IMovImm(IReg, i64),
    IMov(IReg, IReg),
    IAdd(IReg, IReg),
    IAddImm(IReg, i64),
    ISub(IReg, IReg),
    ISubImm(IReg, i64),
    IShlImm(IReg, u8),
    IDivImm(IReg, i64),
    IRemImm(IReg, i64),
    Lea(IReg, Addr),
    ICmp(IReg, IReg),
    ICmpImm(IReg, i64),
    IDec(IReg),
    ILoad(IReg, Addr),
    IStore(Addr, IReg),
    /// Unconditional jump, target resolved to an instruction index.
    Jmp(u32),
    /// Conditional jump: (condition, resolved target, static prediction —
    /// backward branches predicted taken on first encounter).
    Jcc(Cond, u32, bool),
    Halt,
    FLd(FReg, Addr, Prec),
    FSt(Addr, FReg, Prec),
    FStNt(Addr, FReg, Prec),
    FMov(FReg, FReg),
    FLdImm(FReg, f64, Prec),
    FZero(FReg),
    FArith(AOp, FReg, RegOrMem, Prec),
    FAbs(FReg, Prec),
    FSqrt(FReg, Prec),
    FCmp(FReg, RegOrMem, Prec),
    VLd(FReg, Addr, Prec, bool),
    VSt(Addr, FReg, Prec, bool),
    VStNt(Addr, FReg, Prec),
    VMov(FReg, FReg),
    VBcast(FReg, FReg, Prec),
    VArith(AOp, FReg, RegOrMem, Prec),
    VAbs(FReg, Prec),
    VCmpGt(FReg, RegOrMem, Prec),
    VMovMsk(IReg, FReg, Prec),
    VHSum(FReg, FReg, Prec),
    VHMax(FReg, FReg, Prec),
    Prefetch(Addr, PrefKind),
}

/// Lower an assembled program into `out` (cleared first).
fn predecode(prog: &Program, out: &mut Vec<DInst>) {
    out.clear();
    out.reserve(prog.insts.len());
    for (pc, inst) in prog.insts.iter().enumerate() {
        out.push(match inst {
            Inst::IMovImm(d, v) => DInst::IMovImm(*d, *v),
            Inst::IMov(d, s) => DInst::IMov(*d, *s),
            Inst::IAdd(d, s) => DInst::IAdd(*d, *s),
            Inst::IAddImm(d, v) => DInst::IAddImm(*d, *v),
            Inst::ISub(d, s) => DInst::ISub(*d, *s),
            Inst::ISubImm(d, v) => DInst::ISubImm(*d, *v),
            Inst::IShlImm(d, s) => DInst::IShlImm(*d, *s),
            Inst::IDivImm(d, v) => DInst::IDivImm(*d, *v),
            Inst::IRemImm(d, v) => DInst::IRemImm(*d, *v),
            Inst::Lea(d, a) => DInst::Lea(*d, *a),
            Inst::ICmp(a, b) => DInst::ICmp(*a, *b),
            Inst::ICmpImm(a, v) => DInst::ICmpImm(*a, *v),
            Inst::IDec(d) => DInst::IDec(*d),
            Inst::ILoad(d, a) => DInst::ILoad(*d, *a),
            Inst::IStore(a, s) => DInst::IStore(*a, *s),
            Inst::Jmp(l) => DInst::Jmp(prog.target(*l) as u32),
            Inst::Jcc(c, l) => {
                let tgt = prog.target(*l);
                DInst::Jcc(*c, tgt as u32, tgt <= pc)
            }
            Inst::Halt => DInst::Halt,
            Inst::FLd(d, a, p) => DInst::FLd(*d, *a, *p),
            Inst::FSt(a, s, p) => DInst::FSt(*a, *s, *p),
            Inst::FStNt(a, s, p) => DInst::FStNt(*a, *s, *p),
            Inst::FMov(d, s, _p) => DInst::FMov(*d, *s),
            Inst::FLdImm(d, v, p) => DInst::FLdImm(*d, *v, *p),
            Inst::FZero(d) => DInst::FZero(*d),
            Inst::FAdd(d, s, p) => DInst::FArith(AOp::Add, *d, *s, *p),
            Inst::FSub(d, s, p) => DInst::FArith(AOp::Sub, *d, *s, *p),
            Inst::FMul(d, s, p) => DInst::FArith(AOp::Mul, *d, *s, *p),
            Inst::FDiv(d, s, p) => DInst::FArith(AOp::Div, *d, *s, *p),
            Inst::FMax(d, s, p) => DInst::FArith(AOp::Max, *d, *s, *p),
            Inst::FAbs(d, p) => DInst::FAbs(*d, *p),
            Inst::FSqrt(d, p) => DInst::FSqrt(*d, *p),
            Inst::FCmp(a, b, p) => DInst::FCmp(*a, *b, *p),
            Inst::VLd(d, a, p, al) => DInst::VLd(*d, *a, *p, *al),
            Inst::VSt(a, s, p, al) => DInst::VSt(*a, *s, *p, *al),
            Inst::VStNt(a, s, p) => DInst::VStNt(*a, *s, *p),
            Inst::VMov(d, s) => DInst::VMov(*d, *s),
            Inst::VBcast(d, s, p) => DInst::VBcast(*d, *s, *p),
            Inst::VAdd(d, s, p) => DInst::VArith(AOp::Add, *d, *s, *p),
            Inst::VSub(d, s, p) => DInst::VArith(AOp::Sub, *d, *s, *p),
            Inst::VMul(d, s, p) => DInst::VArith(AOp::Mul, *d, *s, *p),
            Inst::VMax(d, s, p) => DInst::VArith(AOp::Max, *d, *s, *p),
            Inst::VAbs(d, p) => DInst::VAbs(*d, *p),
            Inst::VCmpGt(d, s, p) => DInst::VCmpGt(*d, *s, *p),
            Inst::VMovMsk(d, s, p) => DInst::VMovMsk(*d, *s, *p),
            Inst::VHSum(d, s, p) => DInst::VHSum(*d, *s, *p),
            Inst::VHMax(d, s, p) => DInst::VHMax(*d, *s, *p),
            Inst::Prefetch(a, k) => DInst::Prefetch(*a, *k),
        });
    }
}

impl Cpu {
    pub fn new(cfg: MachineConfig) -> Self {
        let l1 = Cache::new(cfg.l1);
        let l2 = Cache::new(cfg.l2);
        let bus = Bus::new(cfg.bus);
        Cpu {
            cfg,
            l1,
            l2,
            bus,
            iregs: [0; NUM_IREGS],
            fregs: [[0; 16]; NUM_FREGS],
            ireg_ready: [0; NUM_IREGS],
            freg_ready: [0; NUM_FREGS],
            flags: 0,
            flags_ready: 0,
            cycle: 0,
            slots: 0,
            width: 3,
            predictor: Vec::new(),
            wc: Vec::new(),
            hw_streams: [u64::MAX; 4],
            hw_misses: [u64::MAX; 8],
            hw_next: 0,
            decoded: Vec::new(),
            stats: RunStats::default(),
            inst_limit: DEFAULT_INST_LIMIT,
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Override the dynamic instruction budget.
    pub fn set_inst_limit(&mut self, limit: u64) {
        self.inst_limit = limit;
    }

    /// Set an integer register before a run (argument passing).
    pub fn set_ireg(&mut self, r: IReg, v: i64) {
        self.iregs[r.0 as usize] = v;
    }
    pub fn ireg(&self, r: IReg) -> i64 {
        self.iregs[r.0 as usize]
    }
    /// Set lane 0 of an FP register before a run (FP argument passing).
    pub fn set_freg_f64(&mut self, r: FReg, v: f64) {
        self.fregs[r.0 as usize] = [0; 16];
        self.fregs[r.0 as usize][0..8].copy_from_slice(&v.to_le_bytes());
    }
    pub fn set_freg_f32(&mut self, r: FReg, v: f32) {
        self.fregs[r.0 as usize] = [0; 16];
        self.fregs[r.0 as usize][0..4].copy_from_slice(&v.to_le_bytes());
    }
    /// Lane 0 of an FP register as f64.
    pub fn freg_f64(&self, r: FReg) -> f64 {
        f64::from_le_bytes(self.fregs[r.0 as usize][0..8].try_into().unwrap())
    }
    pub fn freg_f32(&self, r: FReg) -> f32 {
        f32::from_le_bytes(self.fregs[r.0 as usize][0..4].try_into().unwrap())
    }

    /// Cold-cache setup: empty both cache levels and idle the bus.
    pub fn flush_caches(&mut self) {
        self.l1.flush_all();
        self.l2.flush_all();
        self.bus.reset();
        self.wc.clear();
        self.hw_streams = [u64::MAX; 4];
        self.hw_misses = [u64::MAX; 8];
        self.hw_next = 0;
    }

    /// Pull the address range into L2 only (the paper's "in-L2-cache"
    /// context: operands pre-loaded in cache before timing).
    pub fn preload_l2(&mut self, addr: u64, len: u64) {
        let line = self.cfg.l2.line;
        let mut a = addr / line * line;
        while a < addr + len {
            if let Some(ev) = self.l2.insert(a, 0, false) {
                let _ = ev; // setup traffic is not timed
            }
            a += line;
        }
    }

    /// Pull the address range into both levels (fully warm).
    pub fn preload_all(&mut self, addr: u64, len: u64) {
        self.preload_l2(addr, len);
        let line = self.cfg.l1.line;
        let mut a = addr / line * line;
        while a < addr + len {
            let _ = self.l1.insert(a, 0, false);
            a += line;
        }
    }

    /// Is the line containing `addr` resident in L2? (harness/test helper)
    pub fn l2_resident(&self, addr: u64) -> bool {
        self.l2.peek(addr)
    }
    pub fn l1_resident(&self, addr: u64) -> bool {
        self.l1.peek(addr)
    }

    // ---------------------------------------------------------------- issue

    #[inline]
    fn issue_at(&mut self, ready: u64) -> u64 {
        if ready > self.cycle {
            self.cycle = ready;
            self.slots = 0;
        }
        let t = self.cycle;
        self.slots += 1;
        if self.slots >= self.width {
            self.cycle += 1;
            self.slots = 0;
        }
        t
    }

    /// End the current issue group (taken branches).
    #[inline]
    fn end_group(&mut self) {
        if self.slots != 0 {
            self.cycle += 1;
            self.slots = 0;
        }
    }

    // --------------------------------------------------------------- memory

    /// Handle a line evicted from L1: dirty data falls into L2; if L2
    /// cannot absorb it, the displaced dirty L2 line goes over the bus.
    fn l1_evict(&mut self, ev: crate::cache::Evicted, now: u64) {
        if !ev.dirty {
            return;
        }
        if self.l2.mark_dirty(ev.addr) {
            return;
        }
        if let Some(ev2) = self.l2.insert(ev.addr, now, true) {
            if ev2.dirty {
                self.bus.write(now, self.cfg.l2.line);
            }
        }
    }

    fn l2_evict(&mut self, ev: crate::cache::Evicted, now: u64) {
        if ev.dirty {
            self.bus.write(now, self.cfg.l2.line);
        }
    }

    /// A demand load of `bytes` at `addr`; returns the data-ready cycle.
    fn load_access(&mut self, addr: u64, bytes: u64, now: u64) -> u64 {
        let line = self.cfg.l1.line;
        if addr / line != (addr + bytes - 1) / line {
            // Line-crossing access: both lines, plus the unaligned penalty.
            let split = (addr / line + 1) * line;
            let a = self.load_access_aligned(addr, now);
            let b = self.load_access_aligned(split, now);
            return a.max(b) + self.cfg.unaligned_penalty;
        }
        self.load_access_aligned(addr, now)
    }

    fn load_access_aligned(&mut self, addr: u64, now: u64) -> u64 {
        self.stats.loads += 1;
        match self.l1.probe(addr) {
            Probe::Hit { fill_done } => {
                self.stats.l1_hits += 1;
                now.max(fill_done) + self.cfg.l1.latency
            }
            Probe::Miss => {
                self.stats.l1_misses += 1;
                match self.l2.probe(addr) {
                    Probe::Hit { fill_done } => {
                        self.stats.l2_hits += 1;
                        let ready = now.max(fill_done) + self.cfg.l2.latency;
                        if let Some(ev) = self.l1.insert(addr, ready, false) {
                            self.l1_evict(ev, now);
                        }
                        self.hw_stream_access(addr, now, false);
                        ready
                    }
                    Probe::Miss => {
                        self.stats.l2_misses += 1;
                        let (_, done) = self.bus.read(now, self.cfg.l1.line);
                        let ready = done + self.cfg.mem_lat;
                        if let Some(ev) = self.l2.insert(addr, ready, false) {
                            self.l2_evict(ev, now);
                        }
                        if let Some(ev) = self.l1.insert(addr, ready, false) {
                            self.l1_evict(ev, now);
                        }
                        self.hw_stream_access(addr, now, true);
                        ready
                    }
                }
            }
        }
    }

    /// Hardware stream prefetcher, consulted on every access that reaches
    /// the L2 (demand L2 miss or L2 hit). An ascending stream is detected
    /// after two consecutive line misses; once running, its frontier is
    /// kept `hw_prefetch_depth` lines ahead of the demand access. Fills go
    /// to **L2 only**, cannot cross a `hw_prefetch_page` boundary (the
    /// stream must be re-detected in the next page), and back off when the
    /// bus is saturated — all three of which are why well-tuned *software*
    /// prefetch still beats the hardware engine, while un-prefetched
    /// streaming code (e.g. copy with PF=none, as the paper's search picks
    /// on the P4E) still approaches bus speed.
    fn hw_stream_access(&mut self, addr: u64, now: u64, was_miss: bool) {
        let depth = self.cfg.hw_prefetch_depth;
        if depth == 0 {
            return;
        }
        let line = self.cfg.l2.line;
        let page = self.cfg.hw_prefetch_page;
        let cur = addr / line * line;
        let window = depth * line;
        // Advance an existing stream whose frontier is within reach.
        for i in 0..self.hw_streams.len() {
            let frontier = self.hw_streams[i];
            if frontier != u64::MAX && cur <= frontier && frontier <= cur + window {
                let page_end = (cur / page + 1) * page;
                let target = (cur + window).min(page_end - line);
                let mut l = frontier + line;
                while l <= target {
                    if !self.hw_fill_l2(l, now) {
                        break;
                    }
                    self.hw_streams[i] = l;
                    l += line;
                }
                if self.hw_streams[i] + line > page_end {
                    self.hw_streams[i] = u64::MAX; // stream dies at the page edge
                }
                return;
            }
        }
        if !was_miss {
            return;
        }
        // Detection: this miss plus a recent miss on the previous line.
        if self.hw_misses.contains(&cur.wrapping_sub(line)) {
            // Allocate a stream slot (round robin) with frontier at `cur`.
            let slot = self.hw_next % self.hw_streams.len();
            self.hw_streams[slot] = cur;
            let page_end = (cur / page + 1) * page;
            let target = (cur + window).min(page_end - line);
            let mut l = cur + line;
            while l <= target {
                if !self.hw_fill_l2(l, now) {
                    break;
                }
                self.hw_streams[slot] = l;
                l += line;
            }
        }
        self.hw_misses[self.hw_next % self.hw_misses.len()] = cur;
        self.hw_next = self.hw_next.wrapping_add(1);
    }

    /// Fetch one line into L2 on behalf of the hardware prefetcher.
    /// Returns false (without fetching) when the bus is saturated. The
    /// hardware engine is lower priority than explicit software prefetch:
    /// it only fills when the bus is nearly idle, so it never crowds out
    /// tuned prefetch streams.
    fn hw_fill_l2(&mut self, line_addr: u64, now: u64) -> bool {
        if self.l2.peek(line_addr) {
            return true;
        }
        if self.bus.effective_free(now) > now + self.cfg.pf_queue_slack / 4 {
            return false;
        }
        let (_, done) = self.bus.read(now, self.cfg.l2.line);
        let ready = done + self.cfg.mem_lat;
        if let Some(ev) = self.l2.insert(line_addr, ready, false) {
            self.l2_evict(ev, now);
        }
        self.stats.hw_prefetches += 1;
        true
    }

    /// A normal (write-allocate) store. Stores retire through a store
    /// buffer and do not stall the pipeline; they only change cache state
    /// and consume bus bandwidth (read-for-ownership on miss).
    fn store_access(&mut self, addr: u64, bytes: u64, now: u64) {
        let line = self.cfg.l1.line;
        if addr / line != (addr + bytes - 1) / line {
            let split = (addr / line + 1) * line;
            self.store_access_aligned(addr, now);
            self.store_access_aligned(split, now);
            return;
        }
        self.store_access_aligned(addr, now);
    }

    fn store_access_aligned(&mut self, addr: u64, now: u64) {
        self.stats.stores += 1;
        if self.l1.mark_dirty(addr) {
            self.stats.l1_hits += 1;
            return;
        }
        self.stats.l1_misses += 1;
        match self.l2.probe(addr) {
            Probe::Hit { .. } => {
                self.stats.l2_hits += 1;
                if let Some(ev) = self.l1.insert(addr, now + self.cfg.l2.latency, true) {
                    self.l1_evict(ev, now);
                }
                self.hw_stream_access(addr, now, false);
            }
            Probe::Miss => {
                self.stats.l2_misses += 1;
                // Read-for-ownership: the line must be fetched before the
                // (partial) write can merge into it.
                let (_, done) = self.bus.read(now, self.cfg.l1.line);
                let ready = done + self.cfg.mem_lat;
                if let Some(ev) = self.l2.insert(addr, ready, false) {
                    self.l2_evict(ev, now);
                }
                if let Some(ev) = self.l1.insert(addr, ready, true) {
                    self.l1_evict(ev, now);
                }
                self.hw_stream_access(addr, now, true);
            }
        }
    }

    /// A non-temporal store: bypasses the caches via a write-combining
    /// buffer. Cached copies of the line stay readable until the buffer
    /// flushes (when the line fills or a new line starts); at flush the
    /// line is invalidated, and — if it was cache-resident, i.e. the
    /// operand was read earlier and is not write-only — the machine's
    /// `nt_cached_penalty` stalls the core once per line. This is the
    /// Opteron behaviour behind the paper's icc+prof swap/axpy collapse,
    /// while sequential read-then-NT-write streams (unrolled swap on the
    /// P4E) proceed unharmed.
    fn nt_store_access(&mut self, addr: u64, bytes: u64, now: u64) {
        self.stats.stores += 1;
        self.stats.nt_stores += 1;
        let line = self.cfg.l1.line;
        let line_addr = addr / line * line;
        if let Some(entry) = self.wc.iter_mut().find(|(l, _)| *l == line_addr) {
            entry.1 = (entry.1 + bytes).min(line);
            if entry.1 >= line {
                let idx = self.wc.iter().position(|(l, _)| *l == line_addr).unwrap();
                self.flush_wc_entry(idx, now);
            }
            return;
        }
        if self.wc.len() >= self.cfg.wc_buffers {
            // All buffers busy: flush the oldest (FIFO), possibly partial.
            self.flush_wc_entry(0, now);
        }
        self.wc.push((line_addr, bytes));
    }

    fn flush_wc_entry(&mut self, idx: usize, now: u64) {
        let (line_addr, b) = self.wc.remove(idx);
        self.bus.write(now, b);
        self.stats.wc_flushes += 1;
        let mut hit_cached = false;
        if self.l1.invalidate(line_addr).is_some() {
            hit_cached = true;
        }
        if self.l2.invalidate(line_addr).is_some() {
            hit_cached = true;
        }
        if hit_cached && self.cfg.nt_cached_penalty > 0 {
            self.cycle = self.cycle.max(now) + self.cfg.nt_cached_penalty;
            self.slots = 0;
        }
    }

    fn flush_wc(&mut self, now: u64) {
        while !self.wc.is_empty() {
            self.flush_wc_entry(0, now);
        }
    }

    fn prefetch_access(&mut self, addr: u64, kind: PrefKind, now: u64) {
        let (to_l1, to_l2, dirty) = match kind {
            PrefKind::T0 => (true, true, false),
            PrefKind::T1 | PrefKind::T2 => (false, true, false),
            PrefKind::Nta => (true, false, false),
            PrefKind::W => (true, true, true),
        };
        // Useless if the target level nearest the CPU already has the line.
        let already = if to_l1 {
            self.l1.peek(addr)
        } else {
            self.l2.peek(addr)
        };
        if already {
            self.stats.prefetch_useless += 1;
            return;
        }
        // L2-resident line moving to L1 needs no bus.
        if to_l1 && self.l2.peek(addr) {
            let ready = now + self.cfg.l2.latency;
            if let Some(ev) = self.l1.insert(addr, ready, dirty) {
                self.l1_evict(ev, now);
            }
            self.stats.prefetch_issued += 1;
            return;
        }
        if self.cfg.drop_prefetch_when_busy
            && self.bus.effective_free(now) > now + self.cfg.pf_queue_slack
        {
            self.stats.prefetch_dropped += 1;
            return;
        }
        let (_, done) = self.bus.read(now, self.cfg.l1.line);
        let ready = done + self.cfg.mem_lat;
        if to_l2 {
            if let Some(ev) = self.l2.insert(addr, ready, false) {
                self.l2_evict(ev, now);
            }
        }
        if to_l1 {
            if let Some(ev) = self.l1.insert(addr, ready, dirty) {
                self.l1_evict(ev, now);
            }
        }
        self.stats.prefetch_issued += 1;
    }

    // ------------------------------------------------------------ operands

    #[inline]
    fn ea(&self, a: &Addr) -> u64 {
        let mut v = self.iregs[a.base.0 as usize];
        if let Some((idx, sc)) = a.index {
            v += self.iregs[idx.0 as usize] * sc as i64;
        }
        (v + a.disp) as u64
    }

    #[inline]
    fn addr_ready(&self, a: &Addr) -> u64 {
        let mut r = self.ireg_ready[a.base.0 as usize];
        if let Some((idx, _)) = a.index {
            r = r.max(self.ireg_ready[idx.0 as usize]);
        }
        r
    }

    #[inline]
    fn f64x2(&self, r: FReg) -> [f64; 2] {
        let b = &self.fregs[r.0 as usize];
        [
            f64::from_le_bytes(b[0..8].try_into().unwrap()),
            f64::from_le_bytes(b[8..16].try_into().unwrap()),
        ]
    }
    #[inline]
    fn set_f64x2(&mut self, r: FReg, v: [f64; 2]) {
        let b = &mut self.fregs[r.0 as usize];
        b[0..8].copy_from_slice(&v[0].to_le_bytes());
        b[8..16].copy_from_slice(&v[1].to_le_bytes());
    }
    #[inline]
    fn f32x4(&self, r: FReg) -> [f32; 4] {
        let b = &self.fregs[r.0 as usize];
        [
            f32::from_le_bytes(b[0..4].try_into().unwrap()),
            f32::from_le_bytes(b[4..8].try_into().unwrap()),
            f32::from_le_bytes(b[8..12].try_into().unwrap()),
            f32::from_le_bytes(b[12..16].try_into().unwrap()),
        ]
    }
    #[inline]
    fn set_f32x4(&mut self, r: FReg, v: [f32; 4]) {
        let b = &mut self.fregs[r.0 as usize];
        for (i, x) in v.iter().enumerate() {
            b[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
    }

    /// Read a scalar (lane 0) value as f64 regardless of precision.
    #[inline]
    fn scalar(&self, r: FReg, p: Prec) -> f64 {
        match p {
            Prec::S => self.freg_f32(r) as f64,
            Prec::D => self.freg_f64(r),
        }
    }
    #[inline]
    fn set_scalar(&mut self, r: FReg, p: Prec, v: f64) {
        let b = &mut self.fregs[r.0 as usize];
        match p {
            Prec::S => b[0..4].copy_from_slice(&(v as f32).to_le_bytes()),
            Prec::D => b[0..8].copy_from_slice(&v.to_le_bytes()),
        }
    }

    /// Register readiness an instruction with this RHS must wait for at
    /// *issue*: the register itself, or — for a memory operand — only the
    /// address registers. Cache/memory latency of the operand does **not**
    /// block issue (the load is pipelined); it only delays the result.
    fn rhs_issue_ready(&self, src: &RegOrMem) -> u64 {
        match src {
            RegOrMem::Reg(r) => self.freg_ready[r.0 as usize],
            RegOrMem::Mem(a) => self.addr_ready(a),
        }
    }

    /// Resolve a scalar RHS at issue time `at`: returns (value, data-ready
    /// time). Memory operands perform a timed load of `prec` bytes
    /// initiated at `at`.
    fn scalar_rhs(
        &mut self,
        src: &RegOrMem,
        p: Prec,
        mem: &Memory,
        at: u64,
    ) -> Result<(f64, u64), RunError> {
        match src {
            RegOrMem::Reg(r) => Ok((self.scalar(*r, p), self.freg_ready[r.0 as usize])),
            RegOrMem::Mem(a) => {
                let addr = self.ea(a);
                let ready = self.load_access(addr, p.bytes(), at);
                let v = match p {
                    Prec::S => mem.read_f32(addr)? as f64,
                    Prec::D => mem.read_f64(addr)?,
                };
                Ok((v, ready))
            }
        }
    }

    /// Resolve a vector RHS as 2 f64 lanes or 4 f32 lanes widened to f64.
    fn vector_rhs(
        &mut self,
        src: &RegOrMem,
        p: Prec,
        mem: &Memory,
        at: u64,
    ) -> Result<([f64; 4], u64), RunError> {
        match src {
            RegOrMem::Reg(r) => {
                let v = self.read_lanes(*r, p);
                Ok((v, self.freg_ready[r.0 as usize]))
            }
            RegOrMem::Mem(a) => {
                let addr = self.ea(a);
                let ready = self.load_access(addr, 16, at);
                let v = self.load_lanes(mem, addr, p)?;
                Ok((v, ready))
            }
        }
    }

    #[inline]
    fn read_lanes(&self, r: FReg, p: Prec) -> [f64; 4] {
        match p {
            Prec::D => {
                let [a, b] = self.f64x2(r);
                [a, b, 0.0, 0.0]
            }
            Prec::S => {
                let v = self.f32x4(r);
                [v[0] as f64, v[1] as f64, v[2] as f64, v[3] as f64]
            }
        }
    }

    #[inline]
    fn write_lanes(&mut self, r: FReg, p: Prec, v: [f64; 4]) {
        match p {
            Prec::D => self.set_f64x2(r, [v[0], v[1]]),
            Prec::S => self.set_f32x4(r, [v[0] as f32, v[1] as f32, v[2] as f32, v[3] as f32]),
        }
    }

    fn load_lanes(&self, mem: &Memory, addr: u64, p: Prec) -> Result<[f64; 4], RunError> {
        Ok(match p {
            Prec::D => [mem.read_f64(addr)?, mem.read_f64(addr + 8)?, 0.0, 0.0],
            Prec::S => [
                mem.read_f32(addr)? as f64,
                mem.read_f32(addr + 4)? as f64,
                mem.read_f32(addr + 8)? as f64,
                mem.read_f32(addr + 12)? as f64,
            ],
        })
    }

    fn store_lanes(&self, mem: &mut Memory, addr: u64, p: Prec, r: FReg) -> Result<(), RunError> {
        match p {
            Prec::D => {
                let [a, b] = self.f64x2(r);
                mem.write_f64(addr, a)?;
                mem.write_f64(addr + 8, b)?;
            }
            Prec::S => {
                let v = self.f32x4(r);
                for (i, x) in v.iter().enumerate() {
                    mem.write_f32(addr + 4 * i as u64, *x)?;
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------- run

    /// Enforce the finite out-of-order window: the in-order issue front
    /// end may run at most `window_cycles` ahead of the oldest incomplete
    /// result. Short (cache-hit) latencies are fully hidden; DRAM misses
    /// exceed the window and stall the core for the excess — which is why
    /// prefetching remains essential while in-cache dependence chains
    /// (FP-add accumulators) still surface.
    #[inline]
    fn enforce_window(&mut self, ready: u64) {
        let horizon = self.cycle + self.cfg.window_cycles;
        if ready > horizon {
            self.cycle = ready - self.cfg.window_cycles;
            self.slots = 0;
        }
    }

    /// Execute `prog` to `Halt`. Register and memory state persist; timing
    /// state (cycle counter, scoreboard, stats) is reset at entry, cache
    /// contents are **not** (context setup is the harness's job).
    pub fn run(&mut self, prog: &Program, mem: &mut Memory) -> Result<RunStats, RunError> {
        self.cycle = 0;
        self.slots = 0;
        self.ireg_ready = [0; NUM_IREGS];
        self.freg_ready = [0; NUM_FREGS];
        self.flags_ready = 0;
        self.stats = RunStats::default();
        self.bus.reset();
        self.wc.clear();
        self.width = self.cfg.effective_width(prog.len());
        self.predictor.clear();
        self.predictor.resize(prog.len(), PRED_UNSEEN);
        let mut decoded = std::mem::take(&mut self.decoded);
        predecode(prog, &mut decoded);
        let result = self.interp(&decoded, mem);
        self.decoded = decoded;
        result
    }

    /// The interpret loop over the predecoded program.
    fn interp(&mut self, decoded: &[DInst], mem: &mut Memory) -> Result<RunStats, RunError> {
        let mut pc = 0usize;
        let fadd = self.cfg.fadd_lat;
        let fmul = self.cfg.fmul_lat;
        let fdiv = self.cfg.fdiv_lat;
        let fmov = self.cfg.fmov_lat;
        let intl = self.cfg.int_lat;

        loop {
            if self.stats.insts >= self.inst_limit {
                return Err(RunError::InstLimit {
                    limit: self.inst_limit,
                });
            }
            let Some(&inst) = decoded.get(pc) else {
                return Err(RunError::RanOffEnd);
            };
            self.stats.insts += 1;
            let mut next_pc = pc + 1;

            macro_rules! ird {
                ($r:expr) => {
                    self.ireg_ready[$r.0 as usize]
                };
            }
            macro_rules! frd {
                ($r:expr) => {
                    self.freg_ready[$r.0 as usize]
                };
            }
            // Issue at the next front-end slot; operand readiness delays
            // only the *result*, bounded by the window.
            macro_rules! fin {
                ($dst_ready:expr) => {{
                    let r = $dst_ready;
                    self.enforce_window(r);
                    r
                }};
            }

            match inst {
                DInst::IMovImm(d, v) => {
                    let t = self.issue_at(0);
                    self.iregs[d.0 as usize] = v;
                    ird!(d) = fin!(t + intl);
                }
                DInst::IMov(d, s) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(s)) + intl;
                    self.iregs[d.0 as usize] = self.iregs[s.0 as usize];
                    ird!(d) = fin!(r);
                }
                DInst::IAdd(d, s) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)).max(ird!(s)) + intl;
                    self.iregs[d.0 as usize] =
                        self.iregs[d.0 as usize].wrapping_add(self.iregs[s.0 as usize]);
                    ird!(d) = fin!(r);
                }
                DInst::IAddImm(d, v) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)) + intl;
                    self.iregs[d.0 as usize] = self.iregs[d.0 as usize].wrapping_add(v);
                    ird!(d) = fin!(r);
                }
                DInst::ISub(d, s) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)).max(ird!(s)) + intl;
                    self.iregs[d.0 as usize] =
                        self.iregs[d.0 as usize].wrapping_sub(self.iregs[s.0 as usize]);
                    ird!(d) = fin!(r);
                }
                DInst::ISubImm(d, v) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)) + intl;
                    self.iregs[d.0 as usize] = self.iregs[d.0 as usize].wrapping_sub(v);
                    ird!(d) = fin!(r);
                }
                DInst::IShlImm(d, s) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)) + intl;
                    self.iregs[d.0 as usize] <<= s;
                    ird!(d) = fin!(r);
                }
                DInst::IDivImm(d, v) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)) + 20;
                    self.iregs[d.0 as usize] /= v;
                    ird!(d) = fin!(r);
                }
                DInst::IRemImm(d, v) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)) + 20;
                    self.iregs[d.0 as usize] %= v;
                    ird!(d) = fin!(r);
                }
                DInst::Lea(d, a) => {
                    let t = self.issue_at(0);
                    let r = t.max(self.addr_ready(&a)) + intl;
                    self.iregs[d.0 as usize] = self.ea(&a) as i64;
                    ird!(d) = fin!(r);
                }
                DInst::ICmp(a, b) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(a)).max(ird!(b)) + intl;
                    self.flags = threeway(self.iregs[a.0 as usize], self.iregs[b.0 as usize]);
                    self.flags_ready = fin!(r);
                }
                DInst::ICmpImm(a, v) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(a)) + intl;
                    self.flags = threeway(self.iregs[a.0 as usize], v);
                    self.flags_ready = fin!(r);
                }
                DInst::IDec(d) => {
                    let t = self.issue_at(0);
                    let r = t.max(ird!(d)) + intl;
                    self.iregs[d.0 as usize] -= 1;
                    self.flags = threeway(self.iregs[d.0 as usize], 0);
                    ird!(d) = r;
                    self.flags_ready = fin!(r);
                }
                DInst::ILoad(d, a) => {
                    let t = self.issue_at(0);
                    let start = t.max(self.addr_ready(&a));
                    let addr = self.ea(&a);
                    let ready = self.load_access(addr, 8, start);
                    self.iregs[d.0 as usize] = mem.read_i64(addr)?;
                    ird!(d) = fin!(ready);
                }
                DInst::IStore(a, s) => {
                    let t = self.issue_at(0);
                    let te = t.max(self.addr_ready(&a)).max(ird!(s));
                    let addr = self.ea(&a);
                    self.store_access(addr, 8, te);
                    mem.write_i64(addr, self.iregs[s.0 as usize])?;
                }
                DInst::Jmp(target) => {
                    self.issue_at(0);
                    self.end_group();
                    next_pc = target as usize;
                }
                DInst::Jcc(c, target, static_taken) => {
                    let t = self.issue_at(0);
                    self.stats.branches += 1;
                    let taken = c.eval(self.flags);
                    let pred = self.predictor[pc];
                    let predicted_taken = match pred {
                        PRED_UNSEEN => static_taken, // static: backward taken
                        p => p == 1,
                    };
                    if predicted_taken != taken {
                        // The pipeline restarts once the branch resolves
                        // (flags ready), plus the mispredict penalty.
                        self.stats.mispredicts += 1;
                        self.cycle = t.max(self.flags_ready) + self.cfg.branch_misp;
                        self.slots = 0;
                    } else if taken {
                        self.end_group();
                    }
                    self.predictor[pc] = taken as u8;
                    if taken {
                        next_pc = target as usize;
                    }
                }
                DInst::Halt => {
                    let now = self.cycle;
                    self.flush_wc(now);
                    // All in-flight results must complete.
                    let regs_done = self
                        .ireg_ready
                        .iter()
                        .chain(self.freg_ready.iter())
                        .copied()
                        .max()
                        .unwrap_or(0)
                        .max(self.flags_ready);
                    let drained = self.bus.drain_all(self.cycle);
                    self.stats.cycles = self.cycle.max(regs_done).max(drained);
                    self.stats.bus_read_bytes = self.bus.bytes_read;
                    self.stats.bus_write_bytes = self.bus.bytes_written;
                    return Ok(self.stats);
                }

                DInst::FLd(d, a, p) => {
                    let t = self.issue_at(0);
                    let start = t.max(self.addr_ready(&a));
                    let addr = self.ea(&a);
                    let ready = self.load_access(addr, p.bytes(), start);
                    let v = match p {
                        Prec::S => mem.read_f32(addr)? as f64,
                        Prec::D => mem.read_f64(addr)?,
                    };
                    self.fregs[d.0 as usize] = [0; 16];
                    self.set_scalar(d, p, v);
                    frd!(d) = fin!(ready);
                }
                DInst::FSt(a, s, p) => {
                    let t = self.issue_at(0);
                    let te = t.max(self.addr_ready(&a)).max(frd!(s));
                    let addr = self.ea(&a);
                    self.store_access(addr, p.bytes(), te);
                    let v = self.scalar(s, p);
                    match p {
                        Prec::S => mem.write_f32(addr, v as f32)?,
                        Prec::D => mem.write_f64(addr, v)?,
                    }
                }
                DInst::FStNt(a, s, p) => {
                    let t = self.issue_at(0);
                    let te = t.max(self.addr_ready(&a)).max(frd!(s));
                    let addr = self.ea(&a);
                    self.nt_store_access(addr, p.bytes(), te);
                    let v = self.scalar(s, p);
                    match p {
                        Prec::S => mem.write_f32(addr, v as f32)?,
                        Prec::D => mem.write_f64(addr, v)?,
                    }
                }
                DInst::FMov(d, s) => {
                    let t = self.issue_at(0);
                    let r = t.max(frd!(s)) + fmov;
                    self.fregs[d.0 as usize] = self.fregs[s.0 as usize];
                    frd!(d) = fin!(r);
                }
                DInst::FLdImm(d, v, p) => {
                    let t = self.issue_at(0);
                    self.fregs[d.0 as usize] = [0; 16];
                    self.set_scalar(d, p, v);
                    frd!(d) = fin!(t + fmov);
                }
                DInst::FZero(d) => {
                    let t = self.issue_at(0);
                    self.fregs[d.0 as usize] = [0; 16];
                    frd!(d) = fin!(t + fmov);
                }
                DInst::FArith(op, d, s, p) => {
                    let t = self.issue_at(0);
                    let load_at = t.max(self.rhs_issue_ready(&s));
                    let (rhs, rhs_ready) = self.scalar_rhs(&s, p, mem, load_at)?;
                    let lhs = self.scalar(d, p);
                    let (out, lat) = match op {
                        AOp::Add => (lhs + rhs, fadd),
                        AOp::Sub => (lhs - rhs, fadd),
                        AOp::Mul => (lhs * rhs, fmul),
                        AOp::Div => (lhs / rhs, fdiv),
                        AOp::Max => (if rhs > lhs { rhs } else { lhs }, fadd),
                    };
                    let out = match p {
                        Prec::S => (out as f32) as f64,
                        Prec::D => out,
                    };
                    let r = t.max(frd!(d)).max(rhs_ready) + lat;
                    self.set_scalar(d, p, out);
                    frd!(d) = fin!(r);
                }
                DInst::FAbs(d, p) => {
                    let t = self.issue_at(0);
                    let r = t.max(frd!(d)) + fmov;
                    let v = self.scalar(d, p).abs();
                    self.set_scalar(d, p, v);
                    frd!(d) = fin!(r);
                }
                DInst::FSqrt(d, p) => {
                    let t = self.issue_at(0);
                    let r = t.max(frd!(d)) + fdiv; // sqrt ~ divide latency
                    let v = match p {
                        Prec::S => (self.scalar(d, p) as f32).sqrt() as f64,
                        Prec::D => self.scalar(d, p).sqrt(),
                    };
                    self.set_scalar(d, p, v);
                    frd!(d) = fin!(r);
                }
                DInst::FCmp(a, b, p) => {
                    let t = self.issue_at(0);
                    let load_at = t.max(self.rhs_issue_ready(&b));
                    let (rhs, rhs_ready) = self.scalar_rhs(&b, p, mem, load_at)?;
                    let lhs = self.scalar(a, p);
                    self.flags = fthreeway(lhs, rhs);
                    self.flags_ready = fin!(t.max(frd!(a)).max(rhs_ready) + self.cfg.fcmp_lat);
                }

                DInst::VLd(d, a, p, aligned) => {
                    let t = self.issue_at(0);
                    let start = t.max(self.addr_ready(&a));
                    let addr = self.ea(&a);
                    let mut ready = self.load_access(addr, 16, start);
                    if !aligned {
                        ready += self.cfg.unaligned_penalty;
                    }
                    let lanes = self.load_lanes(mem, addr, p)?;
                    self.write_lanes(d, p, lanes);
                    frd!(d) = fin!(ready);
                }
                DInst::VSt(a, s, p, aligned) => {
                    let t = self.issue_at(0);
                    let mut te = t.max(self.addr_ready(&a)).max(frd!(s));
                    if !aligned {
                        te += self.cfg.unaligned_penalty;
                    }
                    let addr = self.ea(&a);
                    self.store_access(addr, 16, te);
                    self.store_lanes(mem, addr, p, s)?;
                }
                DInst::VStNt(a, s, p) => {
                    let t = self.issue_at(0);
                    let te = t.max(self.addr_ready(&a)).max(frd!(s));
                    let addr = self.ea(&a);
                    self.nt_store_access(addr, 16, te);
                    self.store_lanes(mem, addr, p, s)?;
                }
                DInst::VMov(d, s) => {
                    let t = self.issue_at(0);
                    let r = t.max(frd!(s)) + fmov;
                    self.fregs[d.0 as usize] = self.fregs[s.0 as usize];
                    frd!(d) = fin!(r);
                }
                DInst::VBcast(d, s, p) => {
                    let t = self.issue_at(0);
                    let r = t.max(frd!(s)) + self.cfg.bcast_lat;
                    let v = self.scalar(s, p);
                    self.write_lanes(d, p, [v, v, v, v]);
                    frd!(d) = fin!(r);
                }
                DInst::VArith(op, d, s, p) => {
                    let t = self.issue_at(0);
                    let load_at = t.max(self.rhs_issue_ready(&s));
                    let (rhs, rhs_ready) = self.vector_rhs(&s, p, mem, load_at)?;
                    let lhs = self.read_lanes(d, p);
                    let n = p.veclen() as usize;
                    let mut out = lhs;
                    let lat = match op {
                        AOp::Add => {
                            for i in 0..n {
                                out[i] = lhs[i] + rhs[i];
                            }
                            fadd
                        }
                        AOp::Sub => {
                            for i in 0..n {
                                out[i] = lhs[i] - rhs[i];
                            }
                            fadd
                        }
                        AOp::Mul => {
                            for i in 0..n {
                                out[i] = lhs[i] * rhs[i];
                            }
                            fmul
                        }
                        AOp::Max => {
                            for i in 0..n {
                                out[i] = if rhs[i] > lhs[i] { rhs[i] } else { lhs[i] };
                            }
                            fadd
                        }
                        // The ISA has no lanewise divide; the assembler
                        // never emits one.
                        AOp::Div => unreachable!("no vector divide"),
                    };
                    if p == Prec::S {
                        for v in out.iter_mut().take(n) {
                            *v = (*v as f32) as f64;
                        }
                    }
                    let r = t.max(frd!(d)).max(rhs_ready) + lat;
                    self.write_lanes(d, p, out);
                    frd!(d) = fin!(r);
                }
                DInst::VAbs(d, p) => {
                    let t = self.issue_at(0);
                    let r = t.max(frd!(d)) + fmov;
                    let mut v = self.read_lanes(d, p);
                    for x in &mut v {
                        *x = x.abs();
                    }
                    self.write_lanes(d, p, v);
                    frd!(d) = fin!(r);
                }
                DInst::VCmpGt(d, s, p) => {
                    let t = self.issue_at(0);
                    let load_at = t.max(self.rhs_issue_ready(&s));
                    let (rhs, rhs_ready) = self.vector_rhs(&s, p, mem, load_at)?;
                    let lhs = self.read_lanes(d, p);
                    let n = p.veclen() as usize;
                    // Write lane masks as raw bit patterns (all-ones /
                    // all-zeros), exactly like cmpps — never through float
                    // casts, whose NaN handling is not bit-stable.
                    let lane_bytes = p.bytes() as usize;
                    let mut raw = [0u8; 16];
                    for i in 0..n {
                        if lhs[i] > rhs[i] {
                            for b in 0..lane_bytes {
                                raw[i * lane_bytes + b] = 0xFF;
                            }
                        }
                    }
                    let r = t.max(frd!(d)).max(rhs_ready) + self.cfg.fcmp_lat;
                    self.fregs[d.0 as usize] = raw;
                    frd!(d) = fin!(r);
                }
                DInst::VMovMsk(d, s, p) => {
                    let t = self.issue_at(0);
                    let n = p.veclen() as usize;
                    let mut mask = 0i64;
                    let b = &self.fregs[s.0 as usize];
                    for i in 0..n {
                        let sign = match p {
                            Prec::D => b[i * 8 + 7] & 0x80 != 0,
                            Prec::S => b[i * 4 + 3] & 0x80 != 0,
                        };
                        if sign {
                            mask |= 1 << i;
                        }
                    }
                    self.iregs[d.0 as usize] = mask;
                    self.flags = if mask == 0 { 0 } else { 1 };
                    let lat = self.cfg.fcmp_lat + 1;
                    let r = t.max(frd!(s)) + lat;
                    ird!(d) = r;
                    self.flags_ready = fin!(r);
                }
                DInst::VHSum(d, s, p) => {
                    let t = self.issue_at(0);
                    let v = self.read_lanes(s, p);
                    let n = p.veclen() as usize;
                    let sum: f64 = v[..n].iter().sum();
                    let sum = if p == Prec::S {
                        (sum as f32) as f64
                    } else {
                        sum
                    };
                    self.fregs[d.0 as usize] = [0; 16];
                    self.set_scalar(d, p, sum);
                    frd!(d) = fin!(t.max(frd!(s)) + self.cfg.hsum_lat);
                }
                DInst::VHMax(d, s, p) => {
                    let t = self.issue_at(0);
                    let v = self.read_lanes(s, p);
                    let n = p.veclen() as usize;
                    let m = v[..n].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    self.fregs[d.0 as usize] = [0; 16];
                    self.set_scalar(d, p, m);
                    frd!(d) = fin!(t.max(frd!(s)) + self.cfg.hsum_lat);
                }

                DInst::Prefetch(a, kind) => {
                    let t = self.issue_at(0);
                    let at = t.max(self.addr_ready(&a));
                    let addr = self.ea(&a);
                    self.prefetch_access(addr, kind, at);
                }
            }
            pc = next_pc;
        }
    }
}

#[inline]
fn threeway(a: i64, b: i64) -> i32 {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

#[inline]
fn fthreeway(a: f64, b: f64) -> i32 {
    if a < b {
        -1
    } else if a > b {
        1
    } else {
        0
    }
}
