//! Execution statistics returned by a simulated run.

/// Counters collected during one program execution. `cycles` is the
/// simulated wall time (including draining outstanding bus traffic at
/// halt); everything else is diagnostic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated core cycles.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub insts: u64,
    /// Data loads executed (scalar, vector, integer, and memory operands).
    pub loads: u64,
    /// Data stores executed (normal + non-temporal).
    pub stores: u64,
    /// L1 data cache hits / misses.
    pub l1_hits: u64,
    pub l1_misses: u64,
    /// L2 hits / misses (probed only on L1 miss).
    pub l2_hits: u64,
    pub l2_misses: u64,
    /// Bytes moved over the memory bus.
    pub bus_read_bytes: u64,
    pub bus_write_bytes: u64,
    /// Software prefetches: accepted, dropped because the bus was busy, and
    /// useless (line already resident in the target level).
    pub prefetch_issued: u64,
    pub prefetch_dropped: u64,
    pub prefetch_useless: u64,
    /// Lines fetched by the hardware stream prefetcher.
    pub hw_prefetches: u64,
    /// Non-temporal stores executed and write-combine buffer flushes.
    pub nt_stores: u64,
    pub wc_flushes: u64,
    /// Conditional branches executed / mispredicted.
    pub branches: u64,
    pub mispredicts: u64,
}

impl RunStats {
    /// MFLOPS given a FLOP count and a core frequency in MHz:
    /// `flops / (cycles / mhz)` — the paper's Figure 5 metric.
    pub fn mflops(&self, flops: u64, mhz: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        flops as f64 * mhz as f64 / self.cycles as f64
    }

    /// Cycles per element for an N-element kernel (diagnostic).
    pub fn cycles_per_elem(&self, n: u64) -> f64 {
        self.cycles as f64 / n.max(1) as f64
    }

    /// L1 miss ratio over all cache-probing accesses.
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mflops_formula() {
        let s = RunStats {
            cycles: 2800,
            ..Default::default()
        };
        // 2800 cycles at 2800 MHz = 1 microsecond; 1000 flops in 1us = 1000 MFLOPS.
        assert!((s.mflops(1000, 2800) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mflops_zero_cycles_is_zero() {
        assert_eq!(RunStats::default().mflops(100, 1000), 0.0);
    }

    #[test]
    fn miss_ratio() {
        let s = RunStats {
            l1_hits: 75,
            l1_misses: 25,
            ..Default::default()
        };
        assert!((s.l1_miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(RunStats::default().l1_miss_ratio(), 0.0);
    }
}
