//! Execution statistics returned by a simulated run.

/// Counters collected during one program execution. `cycles` is the
/// simulated wall time (including draining outstanding bus traffic at
/// halt); everything else is diagnostic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Total simulated core cycles.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub insts: u64,
    /// Data loads executed (scalar, vector, integer, and memory operands).
    pub loads: u64,
    /// Data stores executed (normal + non-temporal).
    pub stores: u64,
    /// L1 data cache hits / misses.
    pub l1_hits: u64,
    pub l1_misses: u64,
    /// L2 hits / misses (probed only on L1 miss).
    pub l2_hits: u64,
    pub l2_misses: u64,
    /// Bytes moved over the memory bus.
    pub bus_read_bytes: u64,
    pub bus_write_bytes: u64,
    /// Software prefetches: accepted, dropped because the bus was busy, and
    /// useless (line already resident in the target level).
    pub prefetch_issued: u64,
    pub prefetch_dropped: u64,
    pub prefetch_useless: u64,
    /// Lines fetched by the hardware stream prefetcher.
    pub hw_prefetches: u64,
    /// Non-temporal stores executed and write-combine buffer flushes.
    pub nt_stores: u64,
    pub wc_flushes: u64,
    /// Conditional branches executed / mispredicted.
    pub branches: u64,
    pub mispredicts: u64,
}

/// Accessor for one named `RunStats` counter (see [`RunStats::FIELDS`]).
pub type FieldGet = fn(&RunStats) -> u64;
/// Setter for one named `RunStats` counter (see [`RunStats::FIELDS`]).
pub type FieldSet = fn(&mut RunStats, u64);

impl RunStats {
    /// The single source of truth for counter names: every serializer
    /// (trace records) and parser (report/explain) iterates this table,
    /// so a counter added to the struct but not listed here fails the
    /// `field_table_covers_every_counter` test instead of silently
    /// drifting between writer and reader. Order matches the struct
    /// (and therefore the on-disk trace field order).
    pub const FIELDS: &'static [(&'static str, FieldGet, FieldSet)] = &[
        ("cycles", |s| s.cycles, |s, v| s.cycles = v),
        ("insts", |s| s.insts, |s, v| s.insts = v),
        ("loads", |s| s.loads, |s, v| s.loads = v),
        ("stores", |s| s.stores, |s, v| s.stores = v),
        ("l1_hits", |s| s.l1_hits, |s, v| s.l1_hits = v),
        ("l1_misses", |s| s.l1_misses, |s, v| s.l1_misses = v),
        ("l2_hits", |s| s.l2_hits, |s, v| s.l2_hits = v),
        ("l2_misses", |s| s.l2_misses, |s, v| s.l2_misses = v),
        (
            "bus_read_bytes",
            |s| s.bus_read_bytes,
            |s, v| s.bus_read_bytes = v,
        ),
        (
            "bus_write_bytes",
            |s| s.bus_write_bytes,
            |s, v| s.bus_write_bytes = v,
        ),
        (
            "prefetch_issued",
            |s| s.prefetch_issued,
            |s, v| s.prefetch_issued = v,
        ),
        (
            "prefetch_dropped",
            |s| s.prefetch_dropped,
            |s, v| s.prefetch_dropped = v,
        ),
        (
            "prefetch_useless",
            |s| s.prefetch_useless,
            |s, v| s.prefetch_useless = v,
        ),
        (
            "hw_prefetches",
            |s| s.hw_prefetches,
            |s, v| s.hw_prefetches = v,
        ),
        ("nt_stores", |s| s.nt_stores, |s, v| s.nt_stores = v),
        ("wc_flushes", |s| s.wc_flushes, |s, v| s.wc_flushes = v),
        ("branches", |s| s.branches, |s, v| s.branches = v),
        ("mispredicts", |s| s.mispredicts, |s, v| s.mispredicts = v),
    ];

    /// Look up a counter value by its `FIELDS` name.
    pub fn field(&self, name: &str) -> Option<u64> {
        Self::FIELDS
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, get, _)| get(self))
    }

    /// MFLOPS given a FLOP count and a core frequency in MHz:
    /// `flops / (cycles / mhz)` — the paper's Figure 5 metric.
    pub fn mflops(&self, flops: u64, mhz: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        flops as f64 * mhz as f64 / self.cycles as f64
    }

    /// Cycles per element for an N-element kernel (diagnostic).
    pub fn cycles_per_elem(&self, n: u64) -> f64 {
        self.cycles as f64 / n.max(1) as f64
    }

    /// L1 miss ratio over all cache-probing accesses.
    pub fn l1_miss_ratio(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }

    /// L2 miss ratio over L2 probes (which happen only on L1 miss).
    pub fn l2_miss_ratio(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }

    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Total bytes moved over the memory bus (reads + writes).
    pub fn bus_bytes(&self) -> u64 {
        self.bus_read_bytes + self.bus_write_bytes
    }

    /// Bus traffic per retired instruction, in bytes.
    pub fn bus_bytes_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.bus_bytes() as f64 / self.insts as f64
        }
    }

    /// Fraction of issued software prefetches that did useful work
    /// (neither dropped on a busy bus nor targeting a resident line).
    pub fn prefetch_efficacy(&self) -> f64 {
        if self.prefetch_issued == 0 {
            0.0
        } else {
            let useful = self
                .prefetch_issued
                .saturating_sub(self.prefetch_dropped)
                .saturating_sub(self.prefetch_useless);
            useful as f64 / self.prefetch_issued as f64
        }
    }

    /// Conditional-branch misprediction ratio.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// A stable, named vector of size-normalized rates derived from one
/// candidate's counters. This is the transfer-learning substrate
/// (ROADMAP item 3): rates rather than raw counts so vectors from
/// different problem sizes and machines stay comparable, and a fixed
/// `NAMES` order so persisted vectors never reshuffle between versions.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureVector {
    pub values: Vec<f64>,
}

impl FeatureVector {
    /// Feature names, index-aligned with `values`. Append-only: new
    /// features go at the end so old persisted vectors stay readable.
    pub const NAMES: &'static [&'static str] = &[
        "cycles_per_elem",
        "ipc",
        "loads_per_elem",
        "stores_per_elem",
        "l1_miss_ratio",
        "l2_miss_ratio",
        "bus_bytes_per_elem",
        "bus_bytes_per_inst",
        "prefetch_efficacy",
        "hw_prefetches_per_elem",
        "nt_store_fraction",
        "mispredict_ratio",
    ];

    /// Derive the feature vector from raw counters for an N-element run.
    pub fn from_stats(s: &RunStats, n: u64) -> Self {
        let per_elem = |v: u64| v as f64 / n.max(1) as f64;
        let nt_frac = if s.stores == 0 {
            0.0
        } else {
            s.nt_stores as f64 / s.stores as f64
        };
        FeatureVector {
            values: vec![
                s.cycles_per_elem(n),
                s.ipc(),
                per_elem(s.loads),
                per_elem(s.stores),
                s.l1_miss_ratio(),
                s.l2_miss_ratio(),
                per_elem(s.bus_bytes()),
                s.bus_bytes_per_inst(),
                s.prefetch_efficacy(),
                per_elem(s.hw_prefetches),
                nt_frac,
                s.mispredict_ratio(),
            ],
        }
    }

    /// Value of a named feature.
    pub fn get(&self, name: &str) -> Option<f64> {
        Self::NAMES
            .iter()
            .position(|n| *n == name)
            .and_then(|i| self.values.get(i).copied())
    }

    /// Euclidean distance to another vector (the nearest-neighbor
    /// metric transfer warm-starts use). Returns `None` when the two
    /// vectors have different lengths — i.e. they were produced by
    /// different schema versions — instead of silently comparing the
    /// common prefix.
    pub fn distance(&self, other: &FeatureVector) -> Option<f64> {
        if self.values.len() != other.values.len() {
            return None;
        }
        Some(
            self.values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt(),
        )
    }

    /// Deterministic JSON object `{name: value, ...}` with fixed
    /// 6-decimal formatting (stable across platforms).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in Self::NAMES.iter().zip(&self.values).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v:.6}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mflops_formula() {
        let s = RunStats {
            cycles: 2800,
            ..Default::default()
        };
        // 2800 cycles at 2800 MHz = 1 microsecond; 1000 flops in 1us = 1000 MFLOPS.
        assert!((s.mflops(1000, 2800) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mflops_zero_cycles_is_zero() {
        assert_eq!(RunStats::default().mflops(100, 1000), 0.0);
    }

    #[test]
    fn miss_ratio() {
        let s = RunStats {
            l1_hits: 75,
            l1_misses: 25,
            ..Default::default()
        };
        assert!((s.l1_miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(RunStats::default().l1_miss_ratio(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = RunStats {
            cycles: 1000,
            insts: 2500,
            l2_hits: 30,
            l2_misses: 10,
            bus_read_bytes: 4000,
            bus_write_bytes: 1000,
            prefetch_issued: 100,
            prefetch_dropped: 15,
            prefetch_useless: 5,
            branches: 200,
            mispredicts: 8,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.l2_miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.bus_bytes(), 5000);
        assert!((s.bus_bytes_per_inst() - 2.0).abs() < 1e-12);
        assert!((s.prefetch_efficacy() - 0.80).abs() < 1e-12);
        assert!((s.mispredict_ratio() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn derived_rates_guard_division_by_zero() {
        let z = RunStats::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.l2_miss_ratio(), 0.0);
        assert_eq!(z.bus_bytes_per_inst(), 0.0);
        assert_eq!(z.prefetch_efficacy(), 0.0);
        assert_eq!(z.mispredict_ratio(), 0.0);
    }

    /// A counter added to the struct but not to `FIELDS` (or vice versa)
    /// must fail here: the derived Debug output enumerates the real
    /// struct fields, so the two name sets must match exactly.
    #[test]
    fn field_table_covers_every_counter() {
        let dbg = format!("{:?}", RunStats::default());
        let inner = dbg
            .trim_start_matches("RunStats {")
            .trim_end_matches('}')
            .trim();
        let struct_fields: Vec<&str> = inner
            .split(", ")
            .map(|kv| kv.split(':').next().unwrap().trim())
            .collect();
        let table_fields: Vec<&str> = RunStats::FIELDS.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(struct_fields, table_fields);
    }

    #[test]
    fn field_getters_and_setters_agree() {
        let mut s = RunStats::default();
        for (i, (_, _, set)) in RunStats::FIELDS.iter().enumerate() {
            set(&mut s, (i as u64 + 1) * 11);
        }
        for (i, (name, get, _)) in RunStats::FIELDS.iter().enumerate() {
            assert_eq!(get(&s), (i as u64 + 1) * 11, "field {name}");
            assert_eq!(s.field(name), Some((i as u64 + 1) * 11));
        }
        assert_eq!(s.field("no_such_counter"), None);
    }

    #[test]
    fn feature_vector_is_stable_and_named() {
        let s = RunStats {
            cycles: 4096,
            insts: 8192,
            loads: 2048,
            stores: 1024,
            l1_hits: 900,
            l1_misses: 100,
            l2_hits: 75,
            l2_misses: 25,
            bus_read_bytes: 8192,
            bus_write_bytes: 0,
            prefetch_issued: 64,
            prefetch_dropped: 16,
            prefetch_useless: 0,
            hw_prefetches: 32,
            nt_stores: 512,
            branches: 1024,
            mispredicts: 2,
            ..Default::default()
        };
        let f = FeatureVector::from_stats(&s, 1024);
        assert_eq!(f.values.len(), FeatureVector::NAMES.len());
        assert!((f.get("cycles_per_elem").unwrap() - 4.0).abs() < 1e-12);
        assert!((f.get("ipc").unwrap() - 2.0).abs() < 1e-12);
        assert!((f.get("bus_bytes_per_elem").unwrap() - 8.0).abs() < 1e-12);
        assert!((f.get("prefetch_efficacy").unwrap() - 0.75).abs() < 1e-12);
        assert!((f.get("nt_store_fraction").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(f.get("no_such_feature"), None);
        // Distance to itself is zero; to the default vector it is not.
        assert_eq!(f.distance(&f), Some(0.0));
        let z = FeatureVector::from_stats(&RunStats::default(), 1024);
        assert!(f.distance(&z).unwrap() > 1.0);
        // Vectors from different schema versions are incomparable, not
        // silently truncated to the common prefix.
        let short = FeatureVector {
            values: f.values[..f.values.len() - 1].to_vec(),
        };
        assert_eq!(f.distance(&short), None);
        assert_eq!(short.distance(&f), None);
        // JSON is deterministic and lists every feature by name.
        let j = f.to_json();
        for name in FeatureVector::NAMES {
            assert!(j.contains(&format!("\"{name}\":")), "missing {name}");
        }
        assert_eq!(j, f.to_json());
    }
}
