//! Program builder with forward-reference labels and a disassembler.

use crate::isa::{Inst, Label, Program};

/// Assembler: collects instructions and resolves labels.
#[derive(Default, Debug)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an instruction; returns its index.
    pub fn push(&mut self, i: Inst) -> usize {
        self.insts.push(i);
        self.insts.len() - 1
    }

    /// Append many instructions.
    pub fn extend(&mut self, it: impl IntoIterator<Item = Inst>) {
        self.insts.extend(it);
    }

    /// Create a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Bind `l` to the next instruction to be pushed.
    pub fn bind(&mut self, l: Label) {
        let slot = &mut self.labels[l.0 as usize];
        assert!(slot.is_none(), "label {:?} bound twice", l);
        *slot = Some(self.insts.len());
    }

    /// Create a label bound right here.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.insts.len()
    }
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finish assembly. Panics on unbound labels (a codegen bug).
    pub fn finish(self) -> Program {
        let labels: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| l.unwrap_or_else(|| panic!("label L{i} never bound")))
            .collect();
        for (idx, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::Jmp(l) | Inst::Jcc(_, l) => {
                    assert!(
                        labels[l.0 as usize] <= self.insts.len(),
                        "inst {idx}: branch target out of range"
                    );
                }
                _ => {}
            }
        }
        Program {
            insts: self.insts,
            labels,
        }
    }
}

/// Render a program as pseudo-assembly, one instruction per line, with
/// label comments — used by `--dump-asm` style debugging in the harness.
pub fn disassemble(p: &Program) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Invert label map: instruction index -> labels bound there.
    let mut at: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (l, &idx) in p.labels.iter().enumerate() {
        at.entry(idx).or_default().push(l);
    }
    for (i, inst) in p.insts.iter().enumerate() {
        if let Some(ls) = at.get(&i) {
            for l in ls {
                let _ = writeln!(out, "L{l}:");
            }
        }
        let _ = writeln!(out, "  {:04}  {}", i, render(inst));
    }
    out
}

fn render(i: &Inst) -> String {
    use Inst::*;
    match i {
        IMovImm(d, v) => format!("mov   {d}, {v}"),
        IMov(d, s) => format!("mov   {d}, {s}"),
        IAdd(d, s) => format!("add   {d}, {s}"),
        IAddImm(d, v) => format!("add   {d}, {v}"),
        ISub(d, s) => format!("sub   {d}, {s}"),
        ISubImm(d, v) => format!("sub   {d}, {v}"),
        IShlImm(d, s) => format!("shl   {d}, {s}"),
        IDivImm(d, v) => format!("idiv  {d}, {v}"),
        IRemImm(d, v) => format!("irem  {d}, {v}"),
        Lea(d, a) => format!("lea   {d}, {a}"),
        ICmp(a, b) => format!("cmp   {a}, {b}"),
        ICmpImm(a, v) => format!("cmp   {a}, {v}"),
        IDec(d) => format!("dec   {d}"),
        ILoad(d, a) => format!("ld    {d}, {a}"),
        IStore(a, s) => format!("st    {a}, {s}"),
        Jmp(l) => format!("jmp   L{}", l.0),
        Jcc(c, l) => format!("j{:<4} L{}", format!("{c:?}").to_lowercase(), l.0),
        Halt => "halt".into(),
        FLd(d, a, p) => format!("fld{} {d}, {a}", p.blas_char()),
        FSt(a, s, p) => format!("fst{} {a}, {s}", p.blas_char()),
        FStNt(a, s, p) => format!("fstnt{} {a}, {s}", p.blas_char()),
        FMov(d, s, p) => format!("fmov{} {d}, {s}", p.blas_char()),
        FLdImm(d, v, p) => format!("fldi{} {d}, {v}", p.blas_char()),
        FZero(d) => format!("fzero {d}"),
        FAdd(d, s, p) => format!("fadd{} {d}, {s}", p.blas_char()),
        FSub(d, s, p) => format!("fsub{} {d}, {s}", p.blas_char()),
        FMul(d, s, p) => format!("fmul{} {d}, {s}", p.blas_char()),
        FDiv(d, s, p) => format!("fdiv{} {d}, {s}", p.blas_char()),
        FAbs(d, p) => format!("fabs{} {d}", p.blas_char()),
        FSqrt(d, p) => format!("fsqrt{} {d}", p.blas_char()),
        FMax(d, s, p) => format!("fmax{} {d}, {s}", p.blas_char()),
        FCmp(a, b, p) => format!("fcmp{} {a}, {b}", p.blas_char()),
        VLd(d, a, p, al) => {
            format!(
                "vld{}{} {d}, {a}",
                p.blas_char(),
                if *al { "a" } else { "u" }
            )
        }
        VSt(a, s, p, al) => {
            format!(
                "vst{}{} {a}, {s}",
                p.blas_char(),
                if *al { "a" } else { "u" }
            )
        }
        VStNt(a, s, p) => format!("vstnt{} {a}, {s}", p.blas_char()),
        VMov(d, s) => format!("vmov  {d}, {s}"),
        VBcast(d, s, p) => format!("vbcast{} {d}, {s}", p.blas_char()),
        VAdd(d, s, p) => format!("vadd{} {d}, {s}", p.blas_char()),
        VSub(d, s, p) => format!("vsub{} {d}, {s}", p.blas_char()),
        VMul(d, s, p) => format!("vmul{} {d}, {s}", p.blas_char()),
        VAbs(d, p) => format!("vabs{} {d}", p.blas_char()),
        VMax(d, s, p) => format!("vmax{} {d}, {s}", p.blas_char()),
        VCmpGt(d, s, p) => format!("vcmpgt{} {d}, {s}", p.blas_char()),
        VMovMsk(d, s, p) => format!("vmovmsk{} {d}, {s}", p.blas_char()),
        VHSum(d, s, p) => format!("vhsum{} {d}, {s}", p.blas_char()),
        VHMax(d, s, p) => format!("vhmax{} {d}, {s}", p.blas_char()),
        Prefetch(a, k) => format!("pref.{} {a}", k.abbrev()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Addr, Cond, FReg, IReg, Prec};

    #[test]
    fn forward_label_resolution() {
        let mut a = Asm::new();
        let end = a.new_label();
        a.push(Inst::IMovImm(IReg(0), 5));
        a.push(Inst::Jmp(end));
        a.push(Inst::IMovImm(IReg(0), 7)); // skipped
        a.bind(end);
        a.push(Inst::Halt);
        let p = a.finish();
        assert_eq!(p.target(end), 3);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn here_binds_backward() {
        let mut a = Asm::new();
        a.push(Inst::IMovImm(IReg(0), 3));
        let top = a.here();
        a.push(Inst::IDec(IReg(0)));
        a.push(Inst::Jcc(Cond::Gt, top));
        a.push(Inst::Halt);
        let p = a.finish();
        assert_eq!(p.target(top), 1);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.push(Inst::Jmp(l));
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn disassembly_mentions_labels_and_ops() {
        let mut a = Asm::new();
        let top = a.here();
        a.push(Inst::FLd(FReg(0), Addr::base(IReg(1)), Prec::D));
        a.push(Inst::Jcc(Cond::Ne, top));
        a.push(Inst::Halt);
        let text = disassemble(&a.finish());
        assert!(text.contains("L0:"));
        assert!(text.contains("fldd"));
        assert!(text.contains("jne"));
    }
}
