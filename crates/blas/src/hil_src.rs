//! HIL sources for every surveyed kernel, parameterized by precision —
//! the direct translations of the ANSI C reference loops of Table 1 into
//! the HIL, exactly as the paper describes ("the input routines given to
//! FKO were the direct translations of these routines from ANSI C to our
//! HIL; high level optimizations were not applied to the source"). The
//! `dot` and `amax` listings match the paper's Figure 6.

use crate::ops::{BlasOp, Prec};

fn ty(prec: Prec) -> (&'static str, &'static str) {
    match prec {
        Prec::S => ("FLOAT", "FLOAT_PTR"),
        Prec::D => ("DOUBLE", "DOUBLE_PTR"),
    }
}

/// HIL source for one kernel.
pub fn hil_source(op: BlasOp, prec: Prec) -> String {
    let (t, tp) = ty(prec);
    match op {
        BlasOp::Swap => format!(
            r#"ROUTINE swap(X, Y, N);
PARAMS :: X = {tp}:INOUT, Y = {tp}:INOUT, N = INT;
SCALARS :: a = {t}, b = {t};
ROUT_BEGIN
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    a = X[0];
    b = Y[0];
    X[0] = b;
    Y[0] = a;
    X += 1;
    Y += 1;
  LOOP_END
ROUT_END
"#
        ),
        BlasOp::Scal => format!(
            r#"ROUTINE scal(alpha, X, N);
PARAMS :: alpha = {t}, X = {tp}:INOUT, N = INT;
SCALARS :: x = {t};
ROUT_BEGIN
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x *= alpha;
    X[0] = x;
    X += 1;
  LOOP_END
ROUT_END
"#
        ),
        BlasOp::Copy => format!(
            r#"ROUTINE copy(X, Y, N);
PARAMS :: X = {tp}, Y = {tp}:OUT, N = INT;
SCALARS :: x = {t};
ROUT_BEGIN
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
  LOOP_END
ROUT_END
"#
        ),
        BlasOp::Axpy => format!(
            r#"ROUTINE axpy(alpha, X, Y, N);
PARAMS :: alpha = {t}, X = {tp}, Y = {tp}:INOUT, N = INT;
SCALARS :: x = {t};
ROUT_BEGIN
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x *= alpha;
    Y[0] += x;
    X += 1;
    Y += 1;
  LOOP_END
ROUT_END
"#
        ),
        BlasOp::Dot => format!(
            r#"ROUTINE dot(X, Y, N);
PARAMS :: X = {tp}, Y = {tp}, N = INT;
SCALARS :: dot = {t}:OUT, x = {t}, y = {t};
ROUT_BEGIN
  dot = 0.0;
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
  LOOP_END
  RETURN dot;
ROUT_END
"#
        ),
        BlasOp::Asum => format!(
            r#"ROUTINE asum(X, N);
PARAMS :: X = {tp}, N = INT;
SCALARS :: sum = {t}:OUT, x = {t};
ROUT_BEGIN
  sum = 0.0;
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x = ABS x;
    sum += x;
    X += 1;
  LOOP_END
  RETURN sum;
ROUT_END
"#
        ),
        BlasOp::Rot => format!(
            r#"ROUTINE rot(c, s, X, Y, N);
PARAMS :: c = {t}, s = {t}, X = {tp}:INOUT, Y = {tp}:INOUT, N = INT;
SCALARS :: x = {t}, y = {t}, tx = {t}, ty = {t};
ROUT_BEGIN
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    tx = (x * c) + (y * s);
    ty = (y * c) - (x * s);
    X[0] = tx;
    Y[0] = ty;
    X += 1;
    Y += 1;
  LOOP_END
ROUT_END
"#
        ),
        BlasOp::Nrm2 => format!(
            r#"ROUTINE nrm2(X, N);
PARAMS :: X = {tp}, N = INT;
SCALARS :: nrm = {t}:OUT, x = {t}, sum = {t};
ROUT_BEGIN
  sum = 0.0;
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x *= x;
    sum += x;
    X += 1;
  LOOP_END
  nrm = SQRT sum;
  RETURN nrm;
ROUT_END
"#
        ),
        BlasOp::Iamax => format!(
            r#"ROUTINE iamax(X, N);
PARAMS :: X = {tp}, N = INT;
SCALARS :: amax = {t}, imax = INT:OUT, x = {t};
ROUT_BEGIN
  amax = -1.0;
  imax = 0;
  !! TUNE LOOP
  LOOP i = N, 0, -1
  LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax) GOTO NEWMAX;
  ENDOFLOOP:
    X += 1;
  LOOP_END
  RETURN imax;
NEWMAX:
  amax = x;
  imax = N - i;
  GOTO ENDOFLOOP;
ROUT_END
"#
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::all_ops;

    #[test]
    fn every_kernel_parses_and_checks() {
        for op in all_ops() {
            for prec in [Prec::S, Prec::D] {
                let src = hil_source(op, prec);
                let res = ifko_hil::compile_frontend(&src);
                assert!(res.is_ok(), "{op:?}/{prec:?}: {:?}\n{src}", res.err());
            }
        }
    }

    #[test]
    fn tuned_loop_marked_everywhere() {
        for op in all_ops() {
            let src = hil_source(op, Prec::D);
            let (r, _) = ifko_hil::compile_frontend(&src).unwrap();
            assert!(r.tuned_loop().is_some(), "{op:?} missing TUNE LOOP");
        }
    }

    #[test]
    fn precision_substitution() {
        let s = hil_source(BlasOp::Dot, Prec::S);
        assert!(s.contains("FLOAT_PTR"));
        assert!(!s.contains("DOUBLE"));
        let d = hil_source(BlasOp::Dot, Prec::D);
        assert!(d.contains("DOUBLE_PTR"));
    }

    #[test]
    fn amax_matches_figure6_structure() {
        let src = hil_source(BlasOp::Iamax, Prec::D);
        assert!(src.contains("LOOP i = N, 0, -1"));
        assert!(src.contains("IF (x > amax) GOTO NEWMAX;"));
        assert!(src.contains("imax = N - i;"));
    }
}
