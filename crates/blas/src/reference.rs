//! Rust reference implementations — the tester's ground truth. These are
//! straight transliterations of Table 1's ANSI C loops.

/// Minimal float abstraction so references cover both precisions without
/// external crates.
pub trait Real:
    Copy
    + PartialOrd
    + core::ops::Add<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::AddAssign
    + core::ops::MulAssign
{
    const ZERO: Self;
    fn abs_val(self) -> Self;
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    fn abs_val(self) -> Self {
        self.abs()
    }
}
impl Real for f64 {
    const ZERO: Self = 0.0;
    fn abs_val(self) -> Self {
        self.abs()
    }
}

/// `{tmp=y[i]; y[i]=x[i]; x[i]=tmp}`
pub fn swap<T: Real>(x: &mut [T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        core::mem::swap(&mut x[i], &mut y[i]);
    }
}

/// `y[i] *= alpha`
pub fn scal<T: Real>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// `y[i] = x[i]`
pub fn copy<T: Real>(x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    y.copy_from_slice_ref(x);
}

trait CopyFrom<T> {
    fn copy_from_slice_ref(&mut self, src: &[T]);
}
impl<T: Copy> CopyFrom<T> for [T] {
    fn copy_from_slice_ref(&mut self, src: &[T]) {
        self.copy_from_slice(src);
    }
}

/// `y[i] += alpha * x[i]`
pub fn axpy<T: Real>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

/// `dot += y[i] * x[i]`
pub fn dot<T: Real>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len());
    let mut d = T::ZERO;
    for i in 0..x.len() {
        d += x[i] * y[i];
    }
    d
}

/// `sum += fabs(x[i])`
pub fn asum<T: Real>(x: &[T]) -> T {
    let mut s = T::ZERO;
    for &v in x {
        s += v.abs_val();
    }
    s
}

/// Givens rotation: `{t=c*x+s*y; y=c*y-s*x; x=t}`.
pub fn rot<T: Real + core::ops::Sub<Output = T>>(c: T, s: T, x: &mut [T], y: &mut [T]) {
    assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        let t = c * x[i] + s * y[i];
        y[i] = c * y[i] - s * x[i];
        x[i] = t;
    }
}

/// Euclidean norm (unscaled textbook form, like the kernel).
pub fn nrm2_f64(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}
pub fn nrm2_f32(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Index of the first absolute-value maximum (0-based).
pub fn iamax<T: Real>(x: &[T]) -> usize {
    if x.is_empty() {
        return 0;
    }
    let mut imax = 0;
    let mut maxval = x[0].abs_val();
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v.abs_val() > maxval {
            imax = i;
            maxval = v.abs_val();
        }
    }
    imax
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_works() {
        let mut a = vec![1.0f64, 2.0, 3.0];
        let mut b = vec![4.0, 5.0, 6.0];
        swap(&mut a, &mut b);
        assert_eq!(a, vec![4.0, 5.0, 6.0]);
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn scal_and_copy() {
        let mut a = vec![1.0f32, -2.0];
        scal(2.0, &mut a);
        assert_eq!(a, vec![2.0, -4.0]);
        let mut b = vec![0.0; 2];
        copy(&a, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn axpy_dot_asum() {
        let x = vec![1.0f64, 2.0, 3.0];
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
        assert_eq!(dot(&x, &y), 3.0 + 10.0 + 21.0);
        assert_eq!(asum(&[-1.0f64, 2.0, -3.0]), 6.0);
    }

    #[test]
    fn iamax_first_max_wins() {
        assert_eq!(
            iamax(&[1.0f64, -5.0, 5.0, 2.0]),
            1,
            "first of equal magnitudes"
        );
        assert_eq!(iamax(&[3.0f32]), 0);
        assert_eq!(iamax::<f64>(&[]), 0);
        assert_eq!(iamax(&[-1.0f64, -9.0, 4.0]), 1);
    }
}
