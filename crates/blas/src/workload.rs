//! Deterministic workload generation for timing and testing.
//!
//! The paper times N=80000 out-of-cache and N=1024 in-L2-cache; all
//! timings are repeatable, so workloads are seeded deterministically.

use ifko_xsim::rng::Rng64;

/// The paper's problem sizes.
pub const N_OUT_OF_CACHE: usize = 80_000;
pub const N_IN_L2: usize = 1024;

/// A generated kernel workload: up to two vectors and a scalar.
#[derive(Clone, Debug)]
pub struct Workload {
    pub n: usize,
    pub x: Vec<f64>,
    pub y: Vec<f64>,
    pub alpha: f64,
    /// Second scalar (e.g. `rot`'s s next to its c in `alpha`).
    pub beta: f64,
}

impl Workload {
    /// Deterministic workload for a given size and seed. Values are in
    /// [-1, 1] with a distinct absolute maximum (so `iamax` is unambiguous
    /// across summation orders).
    pub fn generate(n: usize, seed: u64) -> Workload {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x1f3a_5c77);
        let mut x: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        if n > 0 {
            // Plant a strict maximum at a random position.
            let pos = rng.range_usize(n);
            x[pos] = if rng.gen_bool(0.5) { 1.5 } else { -1.5 };
        }
        let alpha = 1.0 + rng.range_f64(0.01, 1.0);
        let beta = rng.range_f64(-1.0, 1.0);
        Workload {
            n,
            x,
            y,
            alpha,
            beta,
        }
    }

    /// Single-precision views of the data.
    pub fn x_f32(&self) -> Vec<f32> {
        self.x.iter().map(|&v| v as f32).collect()
    }
    pub fn y_f32(&self) -> Vec<f32> {
        self.y.iter().map(|&v| v as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::generate(100, 7);
        let b = Workload::generate(100, 7);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        assert_eq!(a.alpha, b.alpha);
        let c = Workload::generate(100, 8);
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn planted_max_is_unique() {
        let w = Workload::generate(5000, 3);
        let mx = w.x.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert_eq!(mx, 1.5);
        let count = w.x.iter().filter(|v| v.abs() == 1.5).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn alpha_nontrivial() {
        let w = Workload::generate(10, 1);
        assert!(w.alpha > 1.0 && w.alpha < 2.0);
    }

    #[test]
    fn f32_views_match() {
        let w = Workload::generate(16, 2);
        assert_eq!(w.x_f32().len(), 16);
        assert_eq!(w.x_f32()[0], w.x[0] as f32);
    }
}
