//! # ifko-blas — the Level 1 BLAS kernel suite
//!
//! The paper evaluates iFKO on the most commonly used Level 1 BLAS
//! routines (its Table 1): swap, scal, copy, axpy, dot, asum and iamax, in
//! single and double precision, on contiguous vectors. This crate provides
//! everything about those kernels that is independent of any particular
//! code generator:
//!
//! * the operation catalog with FLOP accounting ([`ops`], Table 1's FLOPs
//!   column — copy/swap do no arithmetic but are conventionally rated at
//!   N "FLOPs" so MFLOPS remains a speed metric);
//! * HIL sources for each kernel/precision ([`hil_src`]), matching the
//!   paper's Figure 6 listings;
//! * Rust reference implementations used as ground truth by the tester
//!   ([`mod@reference`]);
//! * deterministic workload generation ([`workload`]).

pub mod hil_src;
pub mod ops;
pub mod reference;
pub mod workload;

pub use ops::{all_ops, BlasOp, Kernel, RetKind, ALL_KERNELS};
pub use workload::Workload;
