//! The Level 1 BLAS operation catalog (the paper's Table 1).

pub use ifko_xsim::isa::Prec;

/// The surveyed operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlasOp {
    Swap,
    Scal,
    Copy,
    Axpy,
    Dot,
    Asum,
    Iamax,
    /// Givens plane rotation (extension beyond the paper's surveyed set).
    Rot,
    /// Euclidean norm (extension; exercises the post-loop sqrt epilogue).
    Nrm2,
}

/// What a kernel returns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetKind {
    None,
    Float,
    Index,
}

impl BlasOp {
    /// Operation name without precision prefix.
    pub fn base_name(self) -> &'static str {
        match self {
            BlasOp::Swap => "swap",
            BlasOp::Scal => "scal",
            BlasOp::Copy => "copy",
            BlasOp::Axpy => "axpy",
            BlasOp::Dot => "dot",
            BlasOp::Asum => "asum",
            BlasOp::Iamax => "amax",
            BlasOp::Rot => "rot",
            BlasOp::Nrm2 => "nrm2",
        }
    }

    /// BLAS API name with precision prefix; iamax puts the precision
    /// second (`isamax`/`idamax`), as the paper notes.
    pub fn api_name(self, prec: Prec) -> String {
        match self {
            BlasOp::Iamax => format!("i{}amax", prec.blas_char()),
            _ => format!("{}{}", prec.blas_char(), self.base_name()),
        }
    }

    /// Table 1 FLOP count used for MFLOPS (some routines do no FP
    /// arithmetic; the conventional values below are the paper's).
    pub fn flops(self, n: u64) -> u64 {
        match self {
            BlasOp::Swap | BlasOp::Scal | BlasOp::Copy => n,
            BlasOp::Axpy | BlasOp::Dot | BlasOp::Asum | BlasOp::Iamax | BlasOp::Nrm2 => 2 * n,
            BlasOp::Rot => 6 * n,
        }
    }

    /// Table 1 one-line loop summary.
    pub fn summary(self) -> &'static str {
        match self {
            BlasOp::Swap => "for (i=0; i < N; i++) {tmp=y[i]; y[i]=x[i]; x[i]=tmp}",
            BlasOp::Scal => "for (i=0; i < N; i++) y[i] *= alpha;",
            BlasOp::Copy => "for (i=0; i < N; i++) y[i] = x[i];",
            BlasOp::Axpy => "for (i=0; i < N; i++) y[i] += alpha * x[i];",
            BlasOp::Dot => "for (dot=0.0,i=0; i < N; i++) dot += y[i] * x[i];",
            BlasOp::Asum => "for (sum=0.0,i=0; i < N; i++) sum += fabs(x[i])",
            BlasOp::Iamax => "for (imax=0,maxval=fabs(x[0]), i=1; i<N; i++) if (fabs(x[i]) > maxval) { imax = i; maxval = fabs(x[i]); }",
            BlasOp::Rot => "for (i=0; i < N; i++) {t=c*x[i]+s*y[i]; y[i]=c*y[i]-s*x[i]; x[i]=t}",
            BlasOp::Nrm2 => "for (sum=0.0,i=0; i < N; i++) sum += x[i]*x[i]; return sqrt(sum)",
        }
    }

    /// Number of vector (pointer) arguments.
    pub fn n_vectors(self) -> usize {
        match self {
            BlasOp::Swap | BlasOp::Copy | BlasOp::Axpy | BlasOp::Dot | BlasOp::Rot => 2,
            BlasOp::Scal | BlasOp::Asum | BlasOp::Iamax | BlasOp::Nrm2 => 1,
        }
    }

    /// Does the kernel take a scalar `alpha`?
    pub fn has_alpha(self) -> bool {
        self.n_scalars() >= 1
    }

    /// Number of FP scalar arguments (`rot` takes c and s).
    pub fn n_scalars(self) -> usize {
        match self {
            BlasOp::Scal | BlasOp::Axpy => 1,
            BlasOp::Rot => 2,
            _ => 0,
        }
    }

    /// Which vectors are written (indices into the vector argument list).
    pub fn written_vectors(self) -> &'static [usize] {
        match self {
            BlasOp::Swap | BlasOp::Rot => &[0, 1],
            BlasOp::Scal => &[0],
            BlasOp::Copy => &[1],
            BlasOp::Axpy => &[1],
            BlasOp::Dot | BlasOp::Asum | BlasOp::Iamax | BlasOp::Nrm2 => &[],
        }
    }

    /// Which vectors are read.
    pub fn read_vectors(self) -> &'static [usize] {
        match self {
            BlasOp::Swap | BlasOp::Rot => &[0, 1],
            BlasOp::Scal => &[0],
            BlasOp::Copy => &[0],
            BlasOp::Axpy => &[0, 1],
            BlasOp::Dot => &[0, 1],
            BlasOp::Asum | BlasOp::Iamax | BlasOp::Nrm2 => &[0],
        }
    }

    /// Return kind.
    pub fn ret(self) -> RetKind {
        match self {
            BlasOp::Dot | BlasOp::Asum | BlasOp::Nrm2 => RetKind::Float,
            BlasOp::Iamax => RetKind::Index,
            _ => RetKind::None,
        }
    }
}

/// All surveyed ops in the paper's presentation order.
pub fn all_ops() -> [BlasOp; 7] {
    [
        BlasOp::Swap,
        BlasOp::Scal,
        BlasOp::Copy,
        BlasOp::Axpy,
        BlasOp::Dot,
        BlasOp::Asum,
        BlasOp::Iamax,
    ]
}

/// A (operation, precision) pair — one kernel of the study.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Kernel {
    pub op: BlasOp,
    pub prec: Prec,
}

impl Kernel {
    pub fn name(&self) -> String {
        self.op.api_name(self.prec)
    }
    pub fn flops(&self, n: u64) -> u64 {
        self.op.flops(n)
    }
}

/// Extension ops beyond the paper's survey (see DESIGN.md) — exercised by
/// tests and the `custom_kernel` example, not by the paper's figures.
pub fn extended_ops() -> [BlasOp; 2] {
    [BlasOp::Rot, BlasOp::Nrm2]
}

/// The four extension kernels.
pub const EXTENDED_KERNELS: [Kernel; 4] = [
    Kernel {
        op: BlasOp::Rot,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Rot,
        prec: Prec::D,
    },
    Kernel {
        op: BlasOp::Nrm2,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Nrm2,
        prec: Prec::D,
    },
];

/// The paper's 14 studied kernels (7 ops × {s,d}), in figure order
/// (s-precision first for each op, as in Figures 2-4).
pub const ALL_KERNELS: [Kernel; 14] = [
    Kernel {
        op: BlasOp::Swap,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Swap,
        prec: Prec::D,
    },
    Kernel {
        op: BlasOp::Scal,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Scal,
        prec: Prec::D,
    },
    Kernel {
        op: BlasOp::Copy,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Copy,
        prec: Prec::D,
    },
    Kernel {
        op: BlasOp::Axpy,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Axpy,
        prec: Prec::D,
    },
    Kernel {
        op: BlasOp::Dot,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Dot,
        prec: Prec::D,
    },
    Kernel {
        op: BlasOp::Asum,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Asum,
        prec: Prec::D,
    },
    Kernel {
        op: BlasOp::Iamax,
        prec: Prec::S,
    },
    Kernel {
        op: BlasOp::Iamax,
        prec: Prec::D,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_names_match_paper_convention() {
        assert_eq!(BlasOp::Dot.api_name(Prec::D), "ddot");
        assert_eq!(BlasOp::Dot.api_name(Prec::S), "sdot");
        assert_eq!(BlasOp::Iamax.api_name(Prec::S), "isamax");
        assert_eq!(BlasOp::Iamax.api_name(Prec::D), "idamax");
        assert_eq!(BlasOp::Copy.api_name(Prec::D), "dcopy");
    }

    #[test]
    fn flops_match_table1() {
        for (op, f) in [
            (BlasOp::Swap, 10),
            (BlasOp::Scal, 10),
            (BlasOp::Copy, 10),
            (BlasOp::Axpy, 20),
            (BlasOp::Dot, 20),
            (BlasOp::Asum, 20),
            (BlasOp::Iamax, 20),
        ] {
            assert_eq!(op.flops(10), f, "{op:?}");
        }
    }

    #[test]
    fn shapes_consistent() {
        for op in all_ops() {
            assert!(op.n_vectors() >= 1);
            for &w in op.written_vectors() {
                assert!(w < op.n_vectors());
            }
            for &r in op.read_vectors() {
                assert!(r < op.n_vectors());
            }
            // Every vector is read or written.
            for v in 0..op.n_vectors() {
                assert!(
                    op.written_vectors().contains(&v) || op.read_vectors().contains(&v),
                    "{op:?} vector {v} unused"
                );
            }
        }
    }

    #[test]
    fn fourteen_kernels() {
        assert_eq!(ALL_KERNELS.len(), 14);
        let names: Vec<String> = ALL_KERNELS.iter().map(|k| k.name()).collect();
        assert!(names.contains(&"sswap".to_string()));
        assert!(names.contains(&"idamax".to_string()));
    }
}
