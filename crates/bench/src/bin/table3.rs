//! Regenerates the paper's **Table 3**: the transformation parameters the
//! empirical search selects, per platform and context — `SV:WNT`,
//! per-array prefetch instruction and distance, `UR:AE`.

use ifko::runner::Context;
use ifko_bench::{format_table3, ExpConfig};
use ifko_blas::ALL_KERNELS;
use ifko_xsim::{opteron, p4e};

fn main() {
    let cfg = ExpConfig::from_args();
    let sweeps = [
        (p4e(), Context::OutOfCache, "P4E, out-of-cache"),
        (opteron(), Context::OutOfCache, "Opteron, out-of-cache"),
        (p4e(), Context::InL2, "P4E, in-L2 cache"),
    ];
    println!("Table 3. Transformation parameters by architecture and context\n");
    for (mach, ctx, title) in sweeps {
        let rows: Vec<_> = ALL_KERNELS
            .iter()
            .map(|k| {
                eprintln!("  tuning {} on {} ({})", k.name(), mach.name, ctx.label());
                let opts = cfg.tune_options(ctx);
                let tune = ifko::tune(*k, &mach, ctx, &opts).ok();
                ifko_bench::KernelRow {
                    kernel: *k,
                    cycles: Default::default(),
                    atlas_variant: None,
                    tune,
                }
            })
            .collect();
        println!("{}", format_table3(title, &rows));
    }
}
