//! Regenerates the paper's **Table 3**: the transformation parameters the
//! empirical search selects, per platform and context — `SV:WNT`,
//! per-array prefetch instruction and distance, `UR:AE`.

use ifko::prelude::*;
use ifko_bench::{format_table3, Experiment};

fn main() {
    let sweeps = Experiment::new("table3")
        .sweep(p4e(), Context::OutOfCache)
        .sweep(opteron(), Context::OutOfCache)
        .sweep(p4e(), Context::InL2)
        .tune_only()
        .run();
    println!("Table 3. Transformation parameters by architecture and context\n");
    for sweep in &sweeps {
        println!("{}", format_table3(&sweep.title(), &sweep.rows));
    }
}
