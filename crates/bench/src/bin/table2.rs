//! Regenerates the paper's **Table 2**: platform and compiler information.
//! The original listed icc/gcc flags per machine; this reproduction lists
//! the simulated machine configurations and the model-compiler policies
//! standing in for them (see DESIGN.md's substitution table).

use ifko_xsim::machine::all_machines;

fn main() {
    println!("Table 2. Platform / compiler information (simulated)");
    for m in all_machines() {
        println!("\n{} @ {} MHz", m.name, m.mhz);
        println!(
            "  issue width        : {} (loop buffer {} insts, {} wide beyond)",
            m.issue_width, m.loop_buffer_insts, m.decode_width_big
        );
        println!("  OoO window         : {} cycles", m.window_cycles);
        println!(
            "  FP latencies       : add {} / mul {} / div {}",
            m.fadd_lat, m.fmul_lat, m.fdiv_lat
        );
        println!(
            "  L1                 : {} KB, {}-way, {}B lines, {} cycles",
            m.l1.size / 1024,
            m.l1.assoc,
            m.l1.line,
            m.l1.latency
        );
        println!(
            "  L2                 : {} KB, {}-way, {}B lines, {} cycles",
            m.l2.size / 1024,
            m.l2.assoc,
            m.l2.line,
            m.l2.latency
        );
        println!(
            "  memory             : {} cycles + bus {:.1} B/cycle (turnaround {})",
            m.mem_lat, m.bus.bytes_per_cycle, m.bus.turnaround
        );
        println!(
            "  NT-store penalty   : {} cycles per cached line",
            m.nt_cached_penalty
        );
        let kinds: Vec<&str> = m.prefetch_kinds.iter().map(|k| k.abbrev()).collect();
        println!("  prefetch kinds     : {}", kinds.join(", "));
        println!("  branch mispredict  : {} cycles", m.branch_misp);
    }
    println!("\nModel compilers (stand-ins for the paper's icc 8.0 / gcc 3.x):");
    println!("  gcc+ref  : scalar, unroll 4, no prefetch, no WNT");
    println!("  icc+ref  : SIMD on friendly loops, unroll 2, 2-way reduction split,");
    println!("             fixed prefetchnta at 6 lines, no WNT");
    println!("  icc+prof : icc+ref, unroll 4, plus blind WNT when the profiled");
    println!("             working set exceeds L2");
}
