//! Regenerates the paper's **Figure 3**: percent of best observed
//! performance for each tuning methodology (gcc+ref, icc+ref, icc+prof,
//! ATLAS, FKO, ifko) across the 14 Level 1 BLAS kernels, with the AVG and
//! VAVG summary columns. Kernels where ATLAS selected an all-assembly
//! variant are starred, as in the paper.

use ifko::prelude::*;
use ifko_bench::{format_relative_table, Experiment};

fn main() {
    let exp = Experiment::new("figure3")
        .machine(opteron())
        .context(Context::OutOfCache);
    let n = exp.cfg().n_for(Context::OutOfCache);
    let sweeps = exp.run();
    println!(
        "{}",
        format_relative_table(
            &format!("Figure 3. Relative speedups of various tuning methods on Opteron, out-of-cache, N={n} (% of best)"),
            &sweeps[0].rows
        )
    );
}
