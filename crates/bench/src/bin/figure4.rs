//! Regenerates the paper's **Figure 4**: percent of best observed
//! performance for each tuning methodology (gcc+ref, icc+ref, icc+prof,
//! ATLAS, FKO, ifko) across the 14 Level 1 BLAS kernels, with the AVG and
//! VAVG summary columns. Kernels where ATLAS selected an all-assembly
//! variant are starred, as in the paper.

use ifko::prelude::*;
use ifko_bench::{format_relative_table, Experiment};

fn main() {
    let exp = Experiment::new("figure4")
        .machine(p4e())
        .context(Context::InL2);
    let n = exp.cfg().n_for(Context::InL2);
    let sweeps = exp.run();
    println!(
        "{}",
        format_relative_table(
            &format!("Figure 4. Relative speedups of various tuning methods on P4E, in-L2 cache, N={n} (% of best)"),
            &sweeps[0].rows
        )
    );
}
