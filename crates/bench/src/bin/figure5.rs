//! Regenerates the paper's **Figure 5**:
//! (a) MFLOPS of the ifko-tuned kernels, out-of-cache, on both machines;
//! (b) speedup of the in-L2-tuned kernels over the out-of-cache-tuned
//!     kernels on the P4E — "a very good measure of how bus-bound an
//!     operation is".

use ifko::runner::Context;
use ifko_bench::ExpConfig;
use ifko_blas::ALL_KERNELS;
use ifko_xsim::{opteron, p4e};

fn main() {
    let cfg = ExpConfig::from_args();

    println!("Figure 5(a). ifko-tuned kernel speed, out-of-cache (MFLOPS)");
    println!("{:<10} {:>10} {:>10}", "kernel", "P4E", "Opteron");
    let mut p4_oc = std::collections::HashMap::new();
    for k in ALL_KERNELS {
        let mut cols = Vec::new();
        for mach in [p4e(), opteron()] {
            eprintln!("  tuning {} on {} (oc)", k.name(), mach.name);
            let opts = cfg.tune_options(Context::OutOfCache);
            match ifko::tune(k, &mach, Context::OutOfCache, &opts) {
                Ok(t) => {
                    if mach.name == "P4E" {
                        p4_oc.insert(k.name(), t.cycles);
                    }
                    cols.push(format!("{:>10.0}", t.mflops));
                }
                Err(e) => cols.push(format!("{:>10}", format!("err:{e}"))),
            }
        }
        println!("{:<10} {} {}", k.name(), cols[0], cols[1]);
    }

    println!("\nFigure 5(b). P4E: speedup of in-L2-tuned over out-of-cache-tuned");
    println!("{:<10} {:>10}", "kernel", "speedup");
    let mach = p4e();
    for k in ALL_KERNELS {
        eprintln!("  tuning {} on P4E (ic)", k.name());
        let opts = cfg.tune_options(Context::InL2);
        let Ok(ic) = ifko::tune(k, &mach, Context::InL2, &opts) else {
            continue;
        };
        // Compare cycles/element: contexts use different N.
        let oc_cycles = p4_oc.get(&k.name()).copied().unwrap_or(0);
        let n_oc = cfg.n_for(Context::OutOfCache) as f64;
        let n_ic = cfg.n_for(Context::InL2) as f64;
        if oc_cycles > 0 {
            let per_oc = oc_cycles as f64 / n_oc;
            let per_ic = ic.cycles as f64 / n_ic;
            println!("{:<10} {:>9.2}x", k.name(), per_oc / per_ic);
        }
    }
}
