//! Regenerates the paper's **Figure 5**:
//! (a) MFLOPS of the ifko-tuned kernels, out-of-cache, on both machines;
//! (b) speedup of the in-L2-tuned kernels over the out-of-cache-tuned
//!     kernels on the P4E — "a very good measure of how bus-bound an
//!     operation is".

use ifko::prelude::*;
use ifko_bench::Experiment;

fn main() {
    let exp = Experiment::new("figure5")
        .sweep(p4e(), Context::OutOfCache)
        .sweep(opteron(), Context::OutOfCache)
        .sweep(p4e(), Context::InL2)
        .tune_only();
    let n_oc = exp.cfg().n_for(Context::OutOfCache) as f64;
    let n_ic = exp.cfg().n_for(Context::InL2) as f64;
    let sweeps = exp.run();
    let (p4_oc, opt_oc, p4_ic) = (&sweeps[0].rows, &sweeps[1].rows, &sweeps[2].rows);

    println!("Figure 5(a). ifko-tuned kernel speed, out-of-cache (MFLOPS)");
    println!("{:<10} {:>10} {:>10}", "kernel", "P4E", "Opteron");
    for (a, b) in p4_oc.iter().zip(opt_oc) {
        let col = |t: &Option<ifko::TuneOutcome>| match t {
            Some(t) => format!("{:>10.0}", t.mflops),
            None => format!("{:>10}", "err"),
        };
        println!("{:<10} {} {}", a.kernel.name(), col(&a.tune), col(&b.tune));
    }

    println!("\nFigure 5(b). P4E: speedup of in-L2-tuned over out-of-cache-tuned");
    println!("{:<10} {:>10}", "kernel", "speedup");
    for (oc, ic) in p4_oc.iter().zip(p4_ic) {
        let (Some(oc), Some(ic)) = (&oc.tune, &ic.tune) else {
            continue;
        };
        // Compare cycles/element: contexts use different N.
        let per_oc = oc.cycles as f64 / n_oc;
        let per_ic = ic.cycles as f64 / n_ic;
        println!("{:<10} {:>9.2}x", oc.kernel.name(), per_oc / per_ic);
    }
}
