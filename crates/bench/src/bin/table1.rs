//! Regenerates the paper's **Table 1**: the Level 1 BLAS summary —
//! operation loops and the FLOP counts used for MFLOPS reporting.

use ifko_blas::ops::all_ops;

fn main() {
    println!("Table 1. Level 1 BLAS summary");
    println!("{:<7} {:<64} {:>6}", "NAME", "Operation Summary", "FLOPs");
    for op in all_ops() {
        let flops = match op.flops(1) {
            1 => "N",
            2 => "2N",
            _ => "?",
        };
        println!("{:<7} {:<64} {:>6}", op.base_name(), op.summary(), flops);
    }
}
