//! Head-to-head search-strategy comparison (strategy subsystem demo).
//!
//! Runs each requested strategy on the same kernels (swap and dot by
//! default — one memory-bound, one reduction) with a *private* evaluation
//! cache per strategy, so every strategy pays for its own probes and the
//! comparison is fair. Reports best cycles, speedup over FKO defaults,
//! fresh evaluations, and which member found the winner (portfolio
//! attribution).
//!
//! ```text
//! cargo run --release --bin strategies -- --quick --budget 64
//! cargo run --release --bin strategies -- --strategies line,random,anneal
//! cargo run --release --bin strategies -- --quick --db results/db   # persist winners
//! ```
//!
//! With `--db`, winners persist to the tuned-results database — and
//! later runs on the same key warm-start from it (their winner column
//! keeps the strategy that originally found the stored point). Omit
//! `--db` for a fully cold head-to-head.

use ifko::prelude::*;
use ifko_bench::ExpConfig;
use std::sync::Arc;

fn main() {
    let cfg = ExpConfig::from_args();
    let args: Vec<String> = std::env::args().collect();
    let mut specs: Vec<StrategySpec> = StrategySpec::all().to_vec();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--strategies" {
            if let Some(v) = it.next() {
                specs = v
                    .split(',')
                    .map(|s| match StrategySpec::parse(s.trim()) {
                        Some(sp) => sp,
                        None => {
                            eprintln!(
                                "unknown strategy `{s}` (line | random | hillclimb | anneal | portfolio)"
                            );
                            std::process::exit(2);
                        }
                    })
                    .collect();
            }
        }
    }

    let mach = p4e();
    let ctx = Context::OutOfCache;
    let n = cfg.n_for(ctx);
    let kernels = [
        Kernel {
            op: BlasOp::Swap,
            prec: Prec::D,
        },
        Kernel {
            op: BlasOp::Dot,
            prec: Prec::D,
        },
    ];

    eprintln!(
        "strategy head-to-head on {} ({}), N={n}, budget={}",
        mach.name,
        ctx.label(),
        cfg.budget
    );
    println!(
        "{:<10} {:<8} {:>10} {:>8} {:>6} {:>6} {:>6}  winner",
        "strategy", "kernel", "best", "speedup", "evals", "hits", "pruned"
    );
    for spec in &specs {
        for k in &kernels {
            // A private cache per (strategy, kernel) run: no strategy
            // rides on another's evaluations.
            let mut tc = cfg
                .tune_config(&mach, ctx)
                .cache(Arc::new(EvalCache::new()))
                .strategy(*spec);
            if let Some(dir) = &cfg.db_dir {
                match tc.clone().tuned_db(dir) {
                    Ok(c) => tc = c,
                    Err(e) => eprintln!("tuned-results db unavailable at {dir} ({e})"),
                }
            }
            match tc.tune(*k) {
                Ok(out) => println!(
                    "{:<10} {:<8} {:>10} {:>7.2}x {:>6} {:>6} {:>6}  {}",
                    spec.name(),
                    k.name(),
                    out.result.best_cycles,
                    out.result.speedup_over_default(),
                    out.result.evaluations,
                    out.result.cache_hits,
                    out.result.pruned,
                    out.result.winner_strategy,
                ),
                Err(e) => println!("{:<10} {:<8} FAILED: {e}", spec.name(), k.name()),
            }
        }
    }
    if let Some(dir) = &cfg.db_dir {
        match TunedDb::open(dir) {
            Ok(db) => eprintln!(
                "tuned-results database: {} record(s) in {dir} (shard-*.jsonl)",
                db.len()
            ),
            Err(e) => eprintln!("tuned-results db unreadable at {dir}: {e}"),
        }
    }
    if let Some(p) = &cfg.metrics_path {
        match ifko::metrics::global().write_snapshot(p) {
            Ok(()) => eprintln!("metrics snapshot written to {p}"),
            Err(e) => eprintln!("cannot write metrics {p}: {e}"),
        }
    }
}
