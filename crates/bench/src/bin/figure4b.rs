//! The experiment the paper *omitted* for space: Opteron, in-L2 cache.
//! The paper reports only its summary: "the two best tuning mechanisms
//! are ifko followed by FKO, and icc-tuned kernels run on average at 68%
//! of the speed of ifko-tuned code." This binary regenerates the full
//! matrix so that quote can be checked.

use ifko::prelude::*;
use ifko_baselines::Method;
use ifko_bench::{averages, format_relative_table, Experiment};

fn main() {
    let exp = Experiment::new("figure4b")
        .machine(opteron())
        .context(Context::InL2);
    let n = exp.cfg().n_for(Context::InL2);
    let sweeps = exp.run();
    let rows = &sweeps[0].rows;
    println!(
        "{}",
        format_relative_table(
            &format!("Figure 4b (omitted in the paper): Opteron, in-L2 cache, N={n} (% of best)"),
            rows
        )
    );
    // The paper's summary sentence, checked.
    let mut avgs: Vec<(Method, f64)> = Method::all()
        .iter()
        .map(|m| (*m, averages(rows, *m).0))
        .collect();
    avgs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "ranking by AVG: {}",
        avgs.iter()
            .map(|(m, a)| format!("{} ({a:.1})", m.label()))
            .collect::<Vec<_>>()
            .join(" > ")
    );
    // icc relative to ifko, averaged per kernel (the paper's 68%).
    let ratios: Vec<f64> = rows
        .iter()
        .filter_map(|r| {
            let icc = *r.cycles.get(&Method::IccRef)? as f64;
            let ifko = *r.cycles.get(&Method::Ifko)? as f64;
            Some(ifko / icc * 100.0)
        })
        .collect();
    let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!("icc-tuned kernels run at {avg:.0}% of ifko speed on average (paper: 68%)");
}
