//! Regenerates the paper's **Figure 2**: percent of best observed
//! performance for each tuning methodology (gcc+ref, icc+ref, icc+prof,
//! ATLAS, FKO, ifko) across the 14 Level 1 BLAS kernels, with the AVG and
//! VAVG summary columns. Kernels where ATLAS selected an all-assembly
//! variant are starred, as in the paper.

use ifko::runner::Context;
use ifko_bench::{format_relative_table, run_sweep, ExpConfig};
use ifko_xsim::p4e;

fn main() {
    let cfg = ExpConfig::from_args();
    let mach = p4e();
    let n = cfg.n_for(Context::OutOfCache);
    let rows = run_sweep(&mach, Context::OutOfCache, &cfg);
    println!(
        "{}",
        format_relative_table(
            &format!("Figure 2. Relative speedups of various tuning methods on P4E, out-of-cache, N={n} (% of best)"),
            &rows
        )
    );
}
