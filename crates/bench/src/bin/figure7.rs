//! Regenerates the paper's **Figure 7**: percent of FKO performance
//! gained by empirically tuning each transformation parameter
//! ([WNT, PF DST, PF INS, UR, AE]), per kernel, architecture and context,
//! with the overall ifko/FKO speedup. The paper's averages were
//! [2, 26, 3, 2, 5]% for an overall 1.38x.

use ifko::runner::Context;
use ifko_bench::{format_figure7, ExpConfig};
use ifko_blas::ALL_KERNELS;
use ifko_xsim::{opteron, p4e};

fn main() {
    let cfg = ExpConfig::from_args();
    let sweeps = [
        (p4e(), Context::OutOfCache, "P4E, out-of-cache"),
        (opteron(), Context::OutOfCache, "Opteron, out-of-cache"),
        (p4e(), Context::InL2, "P4E, in-L2 cache"),
        (opteron(), Context::InL2, "Opteron, in-L2 cache"),
    ];
    println!("Figure 7. Speedup of ifko over FKO, by tuned transformation\n");
    let mut grand: Vec<f64> = Vec::new();
    for (mach, ctx, title) in sweeps {
        let rows: Vec<_> = ALL_KERNELS
            .iter()
            .map(|k| {
                eprintln!("  tuning {} on {} ({})", k.name(), mach.name, ctx.label());
                let opts = cfg.tune_options(ctx);
                let tune = ifko::tune(*k, &mach, ctx, &opts).ok();
                if let Some(t) = &tune {
                    grand.push(t.result.speedup_over_default());
                }
                ifko_bench::KernelRow {
                    kernel: *k,
                    cycles: Default::default(),
                    atlas_variant: None,
                    tune,
                }
            })
            .collect();
        println!("{}", format_figure7(title, &rows));
    }
    if !grand.is_empty() {
        let avg = grand.iter().sum::<f64>() / grand.len() as f64;
        println!(
            "Overall: empirically-tuned kernels run {avg:.2}x faster than \
             statically-tuned FKO on average (paper: 1.38x)"
        );
    }
}
