//! Regenerates the paper's **Figure 7**: percent of FKO performance
//! gained by empirically tuning each transformation parameter
//! ([WNT, PF DST, PF INS, UR, AE]), per kernel, architecture and context,
//! with the overall ifko/FKO speedup. The paper's averages were
//! [2, 26, 3, 2, 5]% for an overall 1.38x.
//!
//! In `--quick` mode (without an explicit `--trace`) the full search
//! trace is dumped to `results/traces/figure7-quick.jsonl` as a sample of
//! the structured trace layer.

use ifko::prelude::*;
use ifko_bench::{format_figure7, Experiment};

fn main() {
    let mut exp = Experiment::new("figure7")
        .sweep(p4e(), Context::OutOfCache)
        .sweep(opteron(), Context::OutOfCache)
        .sweep(p4e(), Context::InL2)
        .sweep(opteron(), Context::InL2)
        .tune_only();
    if exp.cfg().quick && exp.cfg().trace_path.is_none() {
        let path = "results/traces/figure7-quick.jsonl";
        match JsonlSink::create(path) {
            Ok(sink) => {
                eprintln!("[figure7] dumping sample search trace to {path}");
                exp = exp.trace(sink);
            }
            Err(e) => eprintln!("[figure7] cannot open {path}: {e}"),
        }
    }
    let sweeps = exp.run();

    println!("Figure 7. Speedup of ifko over FKO, by tuned transformation\n");
    let mut grand: Vec<f64> = Vec::new();
    for sweep in &sweeps {
        for r in &sweep.rows {
            if let Some(t) = &r.tune {
                grand.push(t.result.speedup_over_default());
            }
        }
        println!("{}", format_figure7(&sweep.title(), &sweep.rows));
    }
    if !grand.is_empty() {
        let avg = grand.iter().sum::<f64>() / grand.len() as f64;
        println!(
            "Overall: empirically-tuned kernels run {avg:.2}x faster than \
             statically-tuned FKO on average (paper: 1.38x)"
        );
    }
}
