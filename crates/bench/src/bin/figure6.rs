//! Prints the paper's **Figure 6**: the HIL implementations of the `dot`
//! and `amax` loops (sanity listing — these are the exact sources the
//! other experiments compile).

use ifko_blas::hil_src::hil_source;
use ifko_blas::ops::BlasOp;
use ifko_xsim::isa::Prec;

fn main() {
    println!("Figure 6(a). dot loop (HIL)\n");
    println!("{}", hil_source(BlasOp::Dot, Prec::D));
    println!("Figure 6(b). amax loop (HIL)\n");
    println!("{}", hil_source(BlasOp::Iamax, Prec::D));
}
