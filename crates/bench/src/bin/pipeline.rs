//! Pipeline throughput benchmark: **candidates per second** through the
//! compile pipeline (and compile+simulate), per kernel × machine model.
//!
//! The paper's premise is that empirical search wins only if thousands of
//! candidate compiles are cheap; this binary makes that cost a tracked
//! number. It replays the exact candidate stream the line search submits
//! for each kernel (recorded with a deterministic cost function, so the
//! stream is stable across runs and machines) and measures:
//!
//! * `compile_cps` — candidates/sec through xform → opt → regalloc →
//!   codegen, one fresh tune-worth of compiles per repetition;
//! * `eval_cps` — candidates/sec through compile + one simulator run at a
//!   small N (the per-candidate cost a real tune pays before timing).
//!
//! Output goes to `results/BENCH_pipeline.json` (override with `--out`);
//! `scripts/bench_compare.sh` diffs it against the committed baseline
//! `BENCH_pipeline.json` at the repo root and fails CI on regression.
//! Every run also appends one timestamped line per row to
//! `results/bench_history.jsonl` (next to the `--out` file), so
//! throughput can be plotted over time across commits.

use ifko::runner::{run_once, Context, KernelArgs};
use ifko::search::{line_search_batched, SearchOptions};
use ifko_blas::hil_src::hil_source;
use ifko_blas::ops::BlasOp;
use ifko_blas::{Kernel, Workload};
use ifko_fko::{CompileOpts, CompileSession, TransformParams};
use ifko_xsim::isa::Prec;
use ifko_xsim::{opteron, p4e, MachineConfig};
use std::time::{Duration, Instant};

/// Problem size for the simulate leg: small enough that the compile cost
/// is visible, large enough that the tuned loop dominates the simulation.
const EVAL_N: usize = 512;

struct Row {
    kernel: &'static str,
    machine: String,
    candidates: usize,
    compile_cps: f64,
    eval_cps: f64,
    subcache_hits: u64,
    subcache_misses: u64,
    /// Machine-speed proxy measured right before this row (iterations/sec
    /// of a fixed arithmetic spin): lets the regression gate compare
    /// `compile_cps / calib` across runs, cancelling host-speed drift
    /// (shared-runner CPU steal, frequency scaling) that would otherwise
    /// swamp a 10% gate.
    calib: f64,
}

/// Fixed CPU-bound spin (splitmix64 chain), independent of every crate
/// under test, min-of-reps like the measured legs.
fn calibrate() -> f64 {
    const ITERS: u64 = 2_000_000;
    let spin = || {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..ITERS {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= z >> 31;
        }
        std::hint::black_box(x);
    };
    let best = measure(Duration::from_millis(30), spin);
    ITERS as f64 / best.as_secs_f64()
}

fn bench_kernels() -> Vec<(&'static str, BlasOp, Prec)> {
    vec![
        ("ddot", BlasOp::Dot, Prec::D),
        ("dasum", BlasOp::Asum, Prec::D),
        ("daxpy", BlasOp::Axpy, Prec::D),
        ("scopy", BlasOp::Copy, Prec::S),
    ]
}

/// Record the candidate stream a line search submits for this kernel,
/// using a deterministic pure cost (compiled program length) so the
/// stream never depends on wall-clock noise.
fn record_stream(sess: &CompileSession, mach: &MachineConfig) -> Vec<TransformParams> {
    let opts = SearchOptions::default();
    let mut stream: Vec<TransformParams> = Vec::new();
    line_search_batched(sess.report(), mach, &opts, |_phase, cands| {
        cands
            .iter()
            .map(|p| {
                let cost = sess
                    .compile(p, CompileOpts::verify(false))
                    .ok()
                    .map(|c| c.program.len() as u64);
                // Keep the stream compile-clean: candidates the search
                // rejects (e.g. AE on a kernel with no reduction) fail in
                // xform and are excluded from the throughput measurement.
                if cost.is_some() {
                    stream.push(p.clone());
                }
                cost
            })
            .collect()
    });
    stream
}

/// Run `work` (one tune-worth of candidate compiles) repeatedly until the
/// total measurement is at least `min` long (and at least 3 reps ran);
/// returns the fastest single repetition. Interference only slows a rep
/// down, so the minimum is the stable statistic — the same min-of-reps
/// rule the paper's timer applies to kernel timings.
fn measure(min: Duration, mut work: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    let mut best = Duration::MAX;
    let mut reps = 0u32;
    loop {
        let r0 = Instant::now();
        work();
        best = best.min(r0.elapsed());
        reps += 1;
        if t0.elapsed() >= min && reps >= 3 {
            return best;
        }
    }
}

fn bench_pair(name: &'static str, op: BlasOp, prec: Prec, mach: &MachineConfig) -> Row {
    let calib = calibrate();
    let src = hil_source(op, prec);
    let stream = {
        let sess = CompileSession::from_source(&src, mach).expect("analyze");
        record_stream(&sess, mach)
    };
    let min = min_secs();

    // Compile-only: one fresh tune-worth of compiles per repetition. Each
    // repetition gets a fresh session so the sub-candidate caches start
    // cold, exactly like a real tune; hits within one rep are the hits a
    // tune would see.
    let mut hits = 0u64;
    let mut misses = 0u64;
    let best = measure(min, || {
        let sess = CompileSession::from_source(&src, mach).expect("analyze");
        for p in &stream {
            let _ = sess
                .compile(p, CompileOpts::verify(false))
                .expect("candidate must compile");
        }
        let st = sess.stats();
        hits = st.subcache_hits;
        misses = st.subcache_misses;
    });
    let compile_cps = stream.len() as f64 / best.as_secs_f64();

    // Compile + one simulator run per candidate (what a tune pays before
    // any timing repetition).
    let w = Workload::generate(EVAL_N, 42);
    let kernel = Kernel { op, prec };
    let args = KernelArgs {
        kernel,
        workload: &w,
        context: Context::OutOfCache,
    };
    let ebest = measure(min, || {
        let sess = CompileSession::from_source(&src, mach).expect("analyze");
        for p in &stream {
            let c = sess
                .compile(p, CompileOpts::verify(false))
                .expect("candidate must compile");
            let _ = run_once(&c, &args, mach).expect("candidate must run");
        }
    });
    let eval_cps = stream.len() as f64 / ebest.as_secs_f64();

    Row {
        kernel: name,
        machine: mach.name.to_string(),
        candidates: stream.len(),
        compile_cps,
        eval_cps,
        subcache_hits: hits,
        subcache_misses: misses,
        calib,
    }
}

fn min_secs() -> Duration {
    let secs = std::env::var("IFKO_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.25);
    Duration::from_secs_f64(secs)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, rows: &[Row]) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"schema\": 1,\n  \"bench\": \"pipeline\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"machine\": \"{}\", \"candidates\": {}, \
             \"compile_cps\": {:.1}, \"eval_cps\": {:.1}, \
             \"subcache_hits\": {}, \"subcache_misses\": {}, \
             \"calib\": {:.0}}}{}",
            json_escape(r.kernel),
            json_escape(&r.machine),
            r.candidates,
            r.compile_cps,
            r.eval_cps,
            r.subcache_hits,
            r.subcache_misses,
            r.calib,
            if i + 1 == rows.len() { "\n" } else { ",\n" }
        );
    }
    out.push_str("  ]\n}\n");
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, out)
}

/// Append one timestamped JSONL line per row to `bench_history.jsonl`
/// next to the `--out` file. Append-only: successive runs build a time
/// series a plotting script (or `ifko explain`-style tooling) can read
/// without parsing git history.
fn append_history(out_path: &str, rows: &[Row]) -> std::io::Result<String> {
    use std::fmt::Write as _;
    use std::io::Write as _;
    let dir = std::path::Path::new(out_path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    std::fs::create_dir_all(dir)?;
    let path = dir.join("bench_history.jsonl");
    let t_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(
            out,
            "{{\"t_s\": {t_s}, \"bench\": \"pipeline\", \"kernel\": \"{}\", \
             \"machine\": \"{}\", \"compile_cps\": {:.1}, \"eval_cps\": {:.1}}}",
            json_escape(r.kernel),
            json_escape(&r.machine),
            r.compile_cps,
            r.eval_cps,
        );
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    f.write_all(out.as_bytes())?;
    Ok(path.display().to_string())
}

fn main() {
    let mut out_path = String::from("results/BENCH_pipeline.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--help" | "-h" => {
                println!("pipeline [--out PATH]   (env: IFKO_BENCH_SECS=min seconds per leg)");
                return;
            }
            other => {
                eprintln!("unknown arg: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut rows = Vec::new();
    println!(
        "{:<7} {:<8} {:>6} {:>14} {:>12} {:>10}",
        "KERNEL", "MACHINE", "CANDS", "COMPILE c/s", "EVAL c/s", "SUBCACHE"
    );
    for (name, op, prec) in bench_kernels() {
        for mach in [p4e(), opteron()] {
            let row = bench_pair(name, op, prec, &mach);
            println!(
                "{:<7} {:<8} {:>6} {:>14.0} {:>12.0} {:>6}/{}",
                row.kernel,
                row.machine,
                row.candidates,
                row.compile_cps,
                row.eval_cps,
                row.subcache_hits,
                row.subcache_hits + row.subcache_misses,
            );
            rows.push(row);
        }
    }
    match write_json(&out_path, &rows) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    match append_history(&out_path, &rows) {
        Ok(hist) => println!("appended {} row(s) to {hist}", rows.len()),
        Err(e) => {
            eprintln!("cannot append bench history: {e}");
            std::process::exit(1);
        }
    }
}
