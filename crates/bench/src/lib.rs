//! # ifko-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index). The [`Experiment`] builder is the shared entry point: name the
//! experiment, pick machines/contexts (or explicit sweeps), and `run()`
//! — flags (`--quick`, `--jobs N`, `--workers N`, `--trace PATH`,
//! `--trace-chrome PATH`, `--no-cache`) are
//! parsed from the command line, every sweep shares one evaluation cache
//! (persisted under `results/cache/` so separate binaries reuse each
//! other's points), and progress goes to stderr.
//!
//! The library also holds the lower-level machinery: running all six
//! tuning methodologies on a kernel ([`run_methods`]), formatting the
//! relative-performance rows of Figures 2–4 ([`format_relative_table`]),
//! Table 3 rows, and the Figure 7 per-phase decomposition.
//!
//! All binaries accept `--quick` (reduced N and search) so CI can exercise
//! them; without it they run at paper scale (N=80000 / N=1024).

use ifko::prelude::*;
use ifko::runner::KernelArgs;
use ifko_baselines::{atlas_best, compile_gcc, compile_icc, compile_icc_prof, LoopForm, Method};
use ifko_fko::CompiledKernel;
use std::collections::HashMap;
use std::sync::Arc;

/// Default location of the cross-process evaluation cache.
pub const CACHE_DIR: &str = "results/cache";

/// Configuration of one experiment sweep.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    pub n_out_of_cache: usize,
    pub n_in_l2: usize,
    pub quick: bool,
    pub seed: u64,
    /// Worker threads per candidate batch (`--jobs N`; results are
    /// bit-identical for every value).
    pub jobs: usize,
    /// Worker *processes* per candidate batch (`--workers N`; 0 = stay
    /// in-process). Dispatches evaluations to `ifko-worker` children —
    /// results stay bit-identical to serial and threaded runs.
    pub workers: usize,
    /// JSONL search-trace destination (`--trace PATH`).
    pub trace_path: Option<String>,
    /// Chrome/Perfetto trace destination (`--trace-chrome PATH`): the
    /// same event stream rendered as `trace_event` JSON, openable in
    /// `ui.perfetto.dev` or `chrome://tracing`.
    pub trace_chrome_path: Option<String>,
    /// Metrics-snapshot destination (`--metrics PATH`): the process-wide
    /// registry is written here when the experiment finishes (JSON, or
    /// Prometheus text for `.prom`/`.txt` paths).
    pub metrics_path: Option<String>,
    /// Persist/reuse evaluations under [`CACHE_DIR`] (disable with
    /// `--no-cache`).
    pub use_cache: bool,
    /// Search strategy (`--strategy NAME`; default: the line search).
    pub strategy: StrategySpec,
    /// Probe/wall budget for each search (`--budget N` or `--budget 500ms`).
    pub budget: Budget,
    /// Tuned-results database directory (`--db DIR`, or `--warm-start`
    /// for the conventional `results/db`).
    pub db_dir: Option<String>,
    /// Deterministic fault injection (`--chaos SEED[:RATE]`; off by
    /// default — results stay bit-identical to a fault-free run).
    pub chaos: Option<FaultPlan>,
    /// Per-candidate retry budget for transient faults
    /// (`--max-retries N`; None leaves the library default).
    pub max_retries: Option<u32>,
    /// Fraction of each batch the static cost model may prune before
    /// compiling (`--model-prune FRAC`; 0 keeps predictions trace-only).
    pub model_prune: f64,
}

impl ExpConfig {
    /// Parse from CLI args: `--quick` reduces problem and search sizes,
    /// `--jobs N` sets batch parallelism, `--trace PATH` dumps the JSONL
    /// search trace, `--no-cache` skips the persistent evaluation cache.
    pub fn from_args() -> ExpConfig {
        let args: Vec<String> = std::env::args().collect();
        let mut cfg = ExpConfig::new(args.iter().any(|a| a == "--quick"));
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--jobs" => {
                    if let Some(v) = it.next() {
                        cfg.jobs = v.parse::<usize>().unwrap_or(1).max(1);
                    }
                }
                "--workers" => {
                    if let Some(v) = it.next() {
                        cfg.workers = v.parse::<usize>().unwrap_or(0);
                    }
                }
                "--trace" => cfg.trace_path = it.next().cloned(),
                "--trace-chrome" => cfg.trace_chrome_path = it.next().cloned(),
                "--metrics" => cfg.metrics_path = it.next().cloned(),
                "--no-cache" => cfg.use_cache = false,
                "--strategy" => {
                    if let Some(v) = it.next() {
                        match StrategySpec::parse(v) {
                            Some(s) => cfg.strategy = s,
                            None => {
                                eprintln!(
                                    "unknown strategy `{v}` (line | random | hillclimb | anneal | portfolio)"
                                );
                                std::process::exit(2);
                            }
                        }
                    }
                }
                "--budget" => {
                    if let Some(v) = it.next() {
                        match Budget::parse(v) {
                            Ok(b) => cfg.budget = b,
                            Err(e) => {
                                eprintln!("--budget: {e}");
                                std::process::exit(2);
                            }
                        }
                    }
                }
                "--db" => cfg.db_dir = it.next().cloned(),
                "--warm-start" => {
                    cfg.db_dir.get_or_insert_with(|| "results/db".to_string());
                }
                "--chaos" => {
                    if let Some(v) = it.next() {
                        match FaultPlan::parse(v) {
                            Ok(p) => cfg.chaos = Some(p),
                            Err(e) => {
                                eprintln!("--chaos: {e}");
                                std::process::exit(2);
                            }
                        }
                    }
                }
                "--max-retries" => {
                    if let Some(v) = it.next() {
                        match v.parse() {
                            Ok(r) => cfg.max_retries = Some(r),
                            Err(e) => {
                                eprintln!("--max-retries: {e}");
                                std::process::exit(2);
                            }
                        }
                    }
                }
                "--model-prune" => {
                    if let Some(v) = it.next() {
                        match v.parse::<f64>() {
                            Ok(f) if (0.0..=1.0).contains(&f) => cfg.model_prune = f,
                            Ok(f) => {
                                eprintln!("--model-prune: {f} outside [0, 1]");
                                std::process::exit(2);
                            }
                            Err(e) => {
                                eprintln!("--model-prune: {e}");
                                std::process::exit(2);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        cfg
    }
    pub fn new(quick: bool) -> ExpConfig {
        let (n_oc, n_ic) = if quick {
            (20_000, 1024)
        } else {
            (
                ifko_blas::workload::N_OUT_OF_CACHE,
                ifko_blas::workload::N_IN_L2,
            )
        };
        ExpConfig {
            n_out_of_cache: n_oc,
            n_in_l2: n_ic,
            quick,
            seed: 0xb1a5,
            jobs: 1,
            workers: 0,
            trace_path: None,
            trace_chrome_path: None,
            metrics_path: None,
            use_cache: true,
            strategy: StrategySpec::Line,
            budget: Budget::unlimited(),
            db_dir: None,
            chaos: None,
            max_retries: None,
            model_prune: 0.0,
        }
    }
    pub fn n_for(&self, ctx: Context) -> usize {
        match ctx {
            Context::OutOfCache => self.n_out_of_cache,
            Context::InL2 => self.n_in_l2,
        }
    }
    /// The tuning configuration for one machine/context under this
    /// experiment config (cache/trace are attached by [`Experiment`]).
    pub fn tune_config(&self, mach: &MachineConfig, ctx: Context) -> TuneConfig {
        let n = self.n_for(ctx);
        let base = if self.quick {
            TuneConfig::quick(n)
        } else {
            TuneConfig::paper()
        };
        let mut cfg = base
            .machine(mach.clone())
            .context(ctx)
            .n(n)
            .seed(self.seed)
            .jobs(self.jobs)
            .workers(self.workers)
            .strategy(self.strategy)
            .budget(self.budget);
        if let Some(plan) = &self.chaos {
            cfg = cfg.faults(plan.clone());
        }
        if let Some(r) = self.max_retries {
            cfg = cfg.max_retries(r);
        }
        if self.model_prune > 0.0 {
            cfg = cfg.model_prune(self.model_prune);
        }
        if let Some(dir) = &self.db_dir {
            match cfg.clone().tuned_db(dir) {
                Ok(c) => cfg = c,
                Err(e) => eprintln!("tuned-results db unavailable at {dir} ({e}); continuing"),
            }
        }
        cfg
    }
    pub fn timer(&self) -> Timer {
        if self.quick {
            Timer::exact()
        } else {
            Timer::default()
        }
    }
}

/// Results for one kernel: cycles per method.
#[derive(Clone, Debug)]
pub struct KernelRow {
    pub kernel: Kernel,
    pub cycles: HashMap<Method, u64>,
    /// The ATLAS variant chosen (with `*` marking assembly, as the paper's
    /// figures annotate).
    pub atlas_variant: Option<String>,
    /// Tuning outcome of the ifko run (Table 3 parameters, Figure 7 gains).
    pub tune: Option<ifko::TuneOutcome>,
}

impl KernelRow {
    /// Fastest method's cycles.
    pub fn best_cycles(&self) -> u64 {
        self.cycles.values().copied().min().unwrap_or(u64::MAX)
    }
    /// Percent-of-best for one method (the Figures 2-4 metric).
    pub fn percent(&self, m: Method) -> f64 {
        match self.cycles.get(&m) {
            Some(&c) if c > 0 => 100.0 * self.best_cycles() as f64 / c as f64,
            _ => 0.0,
        }
    }
    /// The figure label: kernel name, with `*` when ATLAS selected an
    /// all-assembly kernel.
    pub fn label(&self) -> String {
        let starred = self
            .atlas_variant
            .as_deref()
            .map(|v| v.ends_with('*'))
            .unwrap_or(false);
        if starred {
            format!("{}*", self.kernel.name())
        } else {
            self.kernel.name()
        }
    }
}

/// One machine/context sweep's results.
#[derive(Clone, Debug)]
pub struct Sweep {
    pub machine: MachineConfig,
    pub context: Context,
    pub rows: Vec<KernelRow>,
}

impl Sweep {
    /// Human title, e.g. `P4E, out-of-cache`.
    pub fn title(&self) -> String {
        let ctx = match self.context {
            Context::OutOfCache => "out-of-cache",
            Context::InL2 => "in-L2 cache",
        };
        format!("{}, {ctx}", self.machine.name)
    }
}

/// Builder for one experiment: which machines, contexts, and kernels to
/// sweep, and whether to run the full six-methodology comparison or just
/// the iFKO tuner. All sweeps share the experiment's evaluation cache and
/// trace sink.
///
/// ```no_run
/// use ifko_bench::Experiment;
/// use ifko::prelude::*;
///
/// let sweeps = Experiment::new("figure2").machine(p4e()).context(Context::OutOfCache).run();
/// println!("{}", ifko_bench::format_relative_table("Figure 2", &sweeps[0].rows));
/// ```
pub struct Experiment {
    name: String,
    cfg: ExpConfig,
    machines: Vec<MachineConfig>,
    contexts: Vec<Context>,
    explicit_sweeps: Vec<(MachineConfig, Context)>,
    kernels: Vec<Kernel>,
    tune_only: bool,
    trace: Option<Arc<dyn TraceSink>>,
}

impl Experiment {
    /// A named experiment configured from the command line
    /// (see [`ExpConfig::from_args`]). Defaults: P4E, out-of-cache, the
    /// full 14-kernel suite, all six methodologies.
    pub fn new(name: impl Into<String>) -> Experiment {
        Experiment::with_config(name, ExpConfig::from_args())
    }

    /// Same, with an explicit config (used by tests).
    pub fn with_config(name: impl Into<String>, cfg: ExpConfig) -> Experiment {
        Experiment {
            name: name.into(),
            cfg,
            machines: vec![p4e()],
            contexts: vec![Context::OutOfCache],
            explicit_sweeps: Vec::new(),
            kernels: ALL_KERNELS.to_vec(),
            tune_only: false,
            trace: None,
        }
    }

    /// Sweep this machine (replaces the default; call repeatedly or use
    /// [`Self::machines`] for several).
    pub fn machine(mut self, m: MachineConfig) -> Self {
        self.machines = vec![m];
        self
    }
    pub fn machines(mut self, ms: impl IntoIterator<Item = MachineConfig>) -> Self {
        self.machines = ms.into_iter().collect();
        self
    }
    /// Sweep this context (product with the machines).
    pub fn context(mut self, c: Context) -> Self {
        self.contexts = vec![c];
        self
    }
    pub fn contexts(mut self, cs: impl IntoIterator<Item = Context>) -> Self {
        self.contexts = cs.into_iter().collect();
        self
    }
    /// Add one explicit (machine, context) sweep; when any are given they
    /// replace the machines × contexts product.
    pub fn sweep(mut self, m: MachineConfig, c: Context) -> Self {
        self.explicit_sweeps.push((m, c));
        self
    }
    /// Restrict the kernel set (default: the full suite).
    pub fn kernels(mut self, ks: impl IntoIterator<Item = Kernel>) -> Self {
        self.kernels = ks.into_iter().collect();
        self
    }
    /// Only run the iFKO tuner (Table 3 / Figure 7 style experiments) —
    /// skips the five baseline methodologies.
    pub fn tune_only(mut self) -> Self {
        self.tune_only = true;
        self
    }
    /// Attach a trace sink programmatically (overrides `--trace`).
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }
    pub fn cfg(&self) -> &ExpConfig {
        &self.cfg
    }

    /// Run every sweep. Progress and a final fresh-vs-cached evaluation
    /// summary go to stderr; results come back in sweep order.
    pub fn run(self) -> Vec<Sweep> {
        let cache: Arc<EvalCache> = if self.cfg.use_cache {
            match EvalCache::persistent(CACHE_DIR) {
                Ok(c) => {
                    if !c.is_empty() {
                        eprintln!(
                            "[{}] warm evaluation cache: {} points from {CACHE_DIR}/evals.jsonl",
                            self.name,
                            c.len()
                        );
                    }
                    Arc::new(c)
                }
                Err(e) => {
                    eprintln!(
                        "[{}] persistent cache unavailable ({e}); using memory",
                        self.name
                    );
                    Arc::new(EvalCache::new())
                }
            }
        } else {
            Arc::new(EvalCache::new())
        };
        let trace: Option<Arc<dyn TraceSink>> = match (&self.trace, &self.cfg.trace_path) {
            (Some(t), _) => Some(t.clone()),
            (None, Some(p)) => match JsonlSink::create(p) {
                Ok(s) => {
                    eprintln!("[{}] tracing evaluations to {p}", self.name);
                    Some(s)
                }
                Err(e) => {
                    eprintln!("[{}] cannot open trace {p}: {e}", self.name);
                    None
                }
            },
            _ => None,
        };
        // The Chrome sink composes with `--trace`: both see the stream,
        // and the render happens once on the final flush.
        let chrome: Option<Arc<ifko::ChromeTraceSink>> = match &self.cfg.trace_chrome_path {
            Some(p) => match ifko::ChromeTraceSink::create(p) {
                Ok(s) => {
                    eprintln!("[{}] rendering Chrome/Perfetto trace to {p}", self.name);
                    Some(s)
                }
                Err(e) => {
                    eprintln!("[{}] cannot open chrome trace {p}: {e}", self.name);
                    None
                }
            },
            None => None,
        };

        let pairs: Vec<(MachineConfig, Context)> = if !self.explicit_sweeps.is_empty() {
            self.explicit_sweeps.clone()
        } else {
            self.machines
                .iter()
                .flat_map(|m| self.contexts.iter().map(move |c| (m.clone(), *c)))
                .collect()
        };

        let mut out = Vec::new();
        for (mach, ctx) in pairs {
            let mut tune_cfg = self.cfg.tune_config(&mach, ctx).cache(cache.clone());
            if let Some(t) = &trace {
                tune_cfg = tune_cfg.trace(t.clone());
            }
            if let Some(c) = &chrome {
                tune_cfg = tune_cfg.trace(c.clone());
            }
            let rows = self
                .kernels
                .iter()
                .map(|k| {
                    eprintln!("  ... {} on {} ({})", k.name(), mach.name, ctx.label());
                    if self.tune_only {
                        KernelRow {
                            kernel: *k,
                            cycles: Default::default(),
                            atlas_variant: None,
                            tune: tune_cfg.tune(*k).ok(),
                        }
                    } else {
                        run_methods_with(*k, &tune_cfg, &self.cfg)
                    }
                })
                .collect();
            out.push(Sweep {
                machine: mach,
                context: ctx,
                rows,
            });
        }

        let (fresh, hits) = out
            .iter()
            .flat_map(|s| &s.rows)
            .filter_map(|r| r.tune.as_ref())
            .fold((0u64, 0u64), |(f, h), t| {
                (
                    f + t.result.evaluations as u64,
                    h + t.result.cache_hits as u64,
                )
            });
        eprintln!(
            "[{}] search evaluations: {fresh} fresh, {hits} cache hits",
            self.name
        );
        if let Some(t) = &trace {
            t.flush();
        }
        if let Some(c) = &chrome {
            c.flush();
        }
        if let Some(p) = &self.cfg.metrics_path {
            match ifko::metrics::global().write_snapshot(p) {
                Ok(()) => eprintln!("[{}] metrics snapshot written to {p}", self.name),
                Err(e) => eprintln!("[{}] cannot write metrics {p}: {e}", self.name),
            }
        }
        out
    }
}

/// Time one compiled baseline with the experiment timer.
fn time_compiled(
    compiled: &CompiledKernel,
    kernel: Kernel,
    w: &Workload,
    ctx: Context,
    mach: &MachineConfig,
    timer: &Timer,
) -> Option<u64> {
    let args = KernelArgs {
        kernel,
        workload: w,
        context: ctx,
    };
    // Baselines are verified too — a wrong baseline would corrupt the
    // comparison silently.
    let out = ifko::runner::run_once(compiled, &args, mach).ok()?;
    ifko::verify(kernel, w, &out).ok()?;
    timer.time(compiled, &args, mach).ok()
}

/// Run all six methodologies for one kernel under a prepared
/// [`TuneConfig`] (machine/context/cache/trace already attached).
pub fn run_methods_with(kernel: Kernel, tune_cfg: &TuneConfig, cfg: &ExpConfig) -> KernelRow {
    let mach = tune_cfg.machine_ref().clone();
    let ctx = tune_cfg.context_of();
    let n = cfg.n_for(ctx);
    let w = Workload::generate(n, cfg.seed);
    let timer = cfg.timer();
    let mut cycles = HashMap::new();

    if let Ok(c) = compile_gcc(kernel, &mach) {
        if let Some(t) = time_compiled(&c, kernel, &w, ctx, &mach, &timer) {
            cycles.insert(Method::GccRef, t);
        }
    }
    if let Ok(c) = compile_icc(kernel, &mach, LoopForm::Friendly) {
        if let Some(t) = time_compiled(&c, kernel, &w, ctx, &mach, &timer) {
            cycles.insert(Method::IccRef, t);
        }
    }
    if let Ok(c) = compile_icc_prof(kernel, &mach, n) {
        if let Some(t) = time_compiled(&c, kernel, &w, ctx, &mach, &timer) {
            cycles.insert(Method::IccProf, t);
        }
    }
    // ATLAS's install-time search selects its kernel with out-of-cache
    // timings (its default timing regime); the selected kernel is then
    // used in whatever context the caller measures — which is how the
    // paper's Figure 4 bars came to be.
    let mut atlas_variant = None;
    let select_w = Workload::generate(cfg.n_out_of_cache, cfg.seed);
    if let Some(choice) = atlas_best(kernel, &mach, Context::OutOfCache, &select_w, &timer) {
        if let Some(t) = time_compiled(&choice.compiled, kernel, &w, ctx, &mach, &timer) {
            cycles.insert(Method::Atlas, t);
        }
        atlas_variant = Some(choice.variant);
    }
    if let Ok(c) = tune_cfg.time_defaults(kernel) {
        cycles.insert(Method::Fko, c);
    }
    let tune_outcome = tune_cfg.tune(kernel).ok();
    if let Some(t) = &tune_outcome {
        cycles.insert(Method::Ifko, t.cycles);
    }

    KernelRow {
        kernel,
        cycles,
        atlas_variant,
        tune: tune_outcome,
    }
}

/// Run all six methodologies for one kernel on one machine/context with a
/// private evaluation cache (convenience over [`run_methods_with`]).
pub fn run_methods(
    kernel: Kernel,
    mach: &MachineConfig,
    ctx: Context,
    cfg: &ExpConfig,
) -> KernelRow {
    run_methods_with(kernel, &cfg.tune_config(mach, ctx), cfg)
}

/// Run the full 14-kernel sweep with a private evaluation cache shared
/// across the kernels (convenience over [`Experiment`]).
pub fn run_sweep(mach: &MachineConfig, ctx: Context, cfg: &ExpConfig) -> Vec<KernelRow> {
    let tune_cfg = cfg.tune_config(mach, ctx);
    ALL_KERNELS
        .iter()
        .map(|k| {
            eprintln!("  ... {} on {} ({})", k.name(), mach.name, ctx.label());
            run_methods_with(*k, &tune_cfg, cfg)
        })
        .collect()
}

/// Average of percent-of-best (the paper's AVG) and the vectorizable-only
/// average (VAVG: everything except iamax, which neither icc nor iFKO
/// vectorize).
pub fn averages(rows: &[KernelRow], m: Method) -> (f64, f64) {
    let all: Vec<f64> = rows.iter().map(|r| r.percent(m)).collect();
    let avg = all.iter().sum::<f64>() / all.len().max(1) as f64;
    let vecd: Vec<f64> = rows
        .iter()
        .filter(|r| r.kernel.op != ifko_blas::BlasOp::Iamax)
        .map(|r| r.percent(m))
        .collect();
    let vavg = vecd.iter().sum::<f64>() / vecd.len().max(1) as f64;
    (avg, vavg)
}

/// Render a Figures-2/3/4-style table: % of best per kernel and method,
/// plus AVG and VAVG columns.
pub fn format_relative_table(title: &str, rows: &[KernelRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{:<10}", "method");
    for r in rows {
        let _ = write!(s, "{:>9}", r.label());
    }
    let _ = writeln!(s, "{:>8}{:>8}", "AVG", "VAVG");
    for m in Method::all() {
        let _ = write!(s, "{:<10}", m.label());
        for r in rows {
            let _ = write!(s, "{:>9.1}", r.percent(m));
        }
        let (avg, vavg) = averages(rows, m);
        let _ = writeln!(s, "{avg:>8.1}{vavg:>8.1}");
    }
    s
}

/// Render Table-3-style rows for a sweep.
pub fn format_table3(title: &str, rows: &[KernelRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<8} {:<6} {:>12} {:>12} {:>7}",
        "BLAS", "SV:WNT", "PF X INS:DST", "PF Y INS:DST", "UR:AE"
    );
    for r in rows {
        if let Some(t) = &r.tune {
            // table3_row = "Y:N pfx pfy UR:AE"
            let parts: Vec<&str> = t.table3_row.split_whitespace().collect();
            let _ = writeln!(
                s,
                "{:<8} {:<6} {:>12} {:>12} {:>7}",
                r.kernel.name(),
                parts.first().copied().unwrap_or("-"),
                parts.get(1).copied().unwrap_or("-"),
                parts.get(2).copied().unwrap_or("-"),
                parts.get(3).copied().unwrap_or("-"),
            );
        }
    }
    s
}

/// Figure 7 data: per-kernel speedup of ifko over FKO, decomposed by
/// search phase.
pub fn format_figure7(title: &str, rows: &[KernelRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{:<10}", "kernel");
    for p in Phase::figure7() {
        let _ = write!(s, "{:>9}", p.label());
    }
    let _ = writeln!(s, "{:>9}", "total");
    let mut sums = vec![0.0f64; Phase::figure7().len()];
    let mut total_sum = 0.0;
    let mut count = 0usize;
    for r in rows {
        let Some(t) = &r.tune else { continue };
        let _ = write!(s, "{:<10}", r.kernel.name());
        for (i, p) in Phase::figure7().iter().enumerate() {
            // Multi-pass searches can visit a phase more than once; the
            // phase's contribution is the product of its passes.
            let g: f64 = t
                .result
                .gains
                .iter()
                .filter(|g| g.phase == *p)
                .map(|g| g.speedup())
                .product();
            sums[i] += g;
            let _ = write!(s, "{:>8.1}%", (g - 1.0) * 100.0);
        }
        let tot = t.result.speedup_over_default();
        total_sum += tot;
        count += 1;
        let _ = writeln!(s, "{:>8.2}x", tot);
    }
    if count > 0 {
        let _ = write!(s, "{:<10}", "average");
        for v in &sums {
            let _ = write!(s, "{:>8.1}%", (v / count as f64 - 1.0) * 100.0);
        }
        let _ = writeln!(s, "{:>8.2}x", total_sum / count as f64);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifko_blas::ops::BlasOp;

    fn test_cfg() -> ExpConfig {
        ExpConfig {
            n_out_of_cache: 3000,
            n_in_l2: 512,
            quick: true,
            seed: 1,
            jobs: 1,
            workers: 0,
            trace_path: None,
            trace_chrome_path: None,
            metrics_path: None,
            use_cache: false,
            strategy: StrategySpec::Line,
            budget: Budget::unlimited(),
            db_dir: None,
            chaos: None,
            max_retries: None,
            model_prune: 0.0,
        }
    }

    #[test]
    fn run_methods_produces_all_six() {
        let k = Kernel {
            op: BlasOp::Dot,
            prec: Prec::D,
        };
        let row = run_methods(k, &p4e(), Context::OutOfCache, &test_cfg());
        for m in Method::all() {
            assert!(row.cycles.contains_key(&m), "missing {m:?}");
        }
        assert!(row.percent(Method::Ifko) > 0.0);
        let best = row.best_cycles();
        assert!(row.cycles.values().all(|&c| c >= best));
    }

    #[test]
    fn relative_table_formats() {
        let mut cfg = test_cfg();
        cfg.n_out_of_cache = 2000;
        let k = Kernel {
            op: BlasOp::Asum,
            prec: Prec::S,
        };
        let rows = vec![run_methods(k, &p4e(), Context::InL2, &cfg)];
        let t = format_relative_table("test", &rows);
        assert!(t.contains("ifko"));
        assert!(t.contains("sasum"));
        assert!(t.contains("AVG"));
    }

    #[test]
    fn experiment_runs_tune_only_sweeps() {
        let mut cfg = test_cfg();
        cfg.n_in_l2 = 400;
        let k = Kernel {
            op: BlasOp::Scal,
            prec: Prec::D,
        };
        let sweeps = Experiment::with_config("test-exp", cfg)
            .sweep(p4e(), Context::InL2)
            .sweep(opteron(), Context::InL2)
            .kernels([k])
            .tune_only()
            .run();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].title(), "P4E, in-L2 cache");
        assert_eq!(sweeps[1].title(), "Opteron, in-L2 cache");
        for s in &sweeps {
            assert_eq!(s.rows.len(), 1);
            assert!(s.rows[0].tune.is_some());
        }
    }

    #[test]
    fn experiment_shares_cache_across_sweeps() {
        // Same (machine, context) listed twice: the second sweep must be
        // answered entirely from the experiment-wide cache.
        let cfg = test_cfg();
        let k = Kernel {
            op: BlasOp::Copy,
            prec: Prec::D,
        };
        let sweeps = Experiment::with_config("test-cache", cfg)
            .sweep(p4e(), Context::OutOfCache)
            .sweep(p4e(), Context::OutOfCache)
            .kernels([k])
            .tune_only()
            .run();
        let first = sweeps[0].rows[0].tune.as_ref().unwrap();
        let second = sweeps[1].rows[0].tune.as_ref().unwrap();
        assert!(first.result.evaluations > 0);
        assert_eq!(second.result.evaluations, 0, "second sweep re-evaluated");
        assert_eq!(first.result.best, second.result.best);
    }
}
