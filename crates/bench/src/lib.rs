//! # ifko-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index); this library holds the shared machinery: running all six
//! tuning methodologies on a kernel ([`run_methods`]), formatting the
//! relative-performance rows of Figures 2–4 ([`format_relative_table`]),
//! Table 3 rows, and the Figure 7 per-phase decomposition.
//!
//! All binaries accept `--quick` (reduced N and search) so CI can exercise
//! them; without it they run at paper scale (N=80000 / N=1024).

use ifko::runner::Context;
use ifko::{time_fko_defaults, tune, Timer, TuneOptions};
use ifko_baselines::{atlas_best, compile_gcc, compile_icc, compile_icc_prof, LoopForm, Method};
use ifko_blas::{Kernel, Workload, ALL_KERNELS};
use ifko_fko::CompiledKernel;
use ifko_xsim::MachineConfig;
use std::collections::HashMap;

/// Configuration of one experiment sweep.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    pub n_out_of_cache: usize,
    pub n_in_l2: usize,
    pub quick: bool,
    pub seed: u64,
}

impl ExpConfig {
    /// Parse from CLI args: `--quick` reduces problem and search sizes.
    pub fn from_args() -> ExpConfig {
        let quick = std::env::args().any(|a| a == "--quick");
        ExpConfig::new(quick)
    }
    pub fn new(quick: bool) -> ExpConfig {
        if quick {
            ExpConfig { n_out_of_cache: 20_000, n_in_l2: 1024, quick: true, seed: 0xb1a5 }
        } else {
            ExpConfig {
                n_out_of_cache: ifko_blas::workload::N_OUT_OF_CACHE,
                n_in_l2: ifko_blas::workload::N_IN_L2,
                quick: false,
                seed: 0xb1a5,
            }
        }
    }
    pub fn n_for(&self, ctx: Context) -> usize {
        match ctx {
            Context::OutOfCache => self.n_out_of_cache,
            Context::InL2 => self.n_in_l2,
        }
    }
    pub fn tune_options(&self, ctx: Context) -> TuneOptions {
        let mut o = if self.quick {
            TuneOptions::quick(self.n_for(ctx))
        } else {
            TuneOptions::default()
        };
        o.n = Some(self.n_for(ctx));
        o.seed = self.seed;
        o
    }
    pub fn timer(&self) -> Timer {
        if self.quick {
            Timer::exact()
        } else {
            Timer::default()
        }
    }
}

/// Results for one kernel: cycles per method.
#[derive(Clone, Debug)]
pub struct KernelRow {
    pub kernel: Kernel,
    pub cycles: HashMap<Method, u64>,
    /// The ATLAS variant chosen (with `*` marking assembly, as the paper's
    /// figures annotate).
    pub atlas_variant: Option<String>,
    /// Tuning outcome of the ifko run (Table 3 parameters, Figure 7 gains).
    pub tune: Option<ifko::TuneOutcome>,
}

impl KernelRow {
    /// Fastest method's cycles.
    pub fn best_cycles(&self) -> u64 {
        self.cycles.values().copied().min().unwrap_or(u64::MAX)
    }
    /// Percent-of-best for one method (the Figures 2-4 metric).
    pub fn percent(&self, m: Method) -> f64 {
        match self.cycles.get(&m) {
            Some(&c) if c > 0 => 100.0 * self.best_cycles() as f64 / c as f64,
            _ => 0.0,
        }
    }
    /// The figure label: kernel name, with `*` when ATLAS selected an
    /// all-assembly kernel.
    pub fn label(&self) -> String {
        let starred = self
            .atlas_variant
            .as_deref()
            .map(|v| v.ends_with('*'))
            .unwrap_or(false);
        if starred {
            format!("{}*", self.kernel.name())
        } else {
            self.kernel.name()
        }
    }
}

/// Time one compiled baseline with the experiment timer.
fn time_compiled(
    compiled: &CompiledKernel,
    kernel: Kernel,
    w: &Workload,
    ctx: Context,
    mach: &MachineConfig,
    timer: &Timer,
) -> Option<u64> {
    let args = ifko::runner::KernelArgs { kernel, workload: w, context: ctx };
    // Baselines are verified too — a wrong baseline would corrupt the
    // comparison silently.
    let out = ifko::runner::run_once(compiled, &args, mach).ok()?;
    ifko::verify(kernel, w, &out).ok()?;
    timer.time(compiled, &args, mach).ok()
}

/// Run all six methodologies for one kernel on one machine/context.
pub fn run_methods(
    kernel: Kernel,
    mach: &MachineConfig,
    ctx: Context,
    cfg: &ExpConfig,
) -> KernelRow {
    let n = cfg.n_for(ctx);
    let w = Workload::generate(n, cfg.seed);
    let timer = cfg.timer();
    let mut cycles = HashMap::new();

    if let Ok(c) = compile_gcc(kernel, mach) {
        if let Some(t) = time_compiled(&c, kernel, &w, ctx, mach, &timer) {
            cycles.insert(Method::GccRef, t);
        }
    }
    if let Ok(c) = compile_icc(kernel, mach, LoopForm::Friendly) {
        if let Some(t) = time_compiled(&c, kernel, &w, ctx, mach, &timer) {
            cycles.insert(Method::IccRef, t);
        }
    }
    if let Ok(c) = compile_icc_prof(kernel, mach, n) {
        if let Some(t) = time_compiled(&c, kernel, &w, ctx, mach, &timer) {
            cycles.insert(Method::IccProf, t);
        }
    }
    // ATLAS's install-time search selects its kernel with out-of-cache
    // timings (its default timing regime); the selected kernel is then
    // used in whatever context the caller measures — which is how the
    // paper's Figure 4 bars came to be.
    let mut atlas_variant = None;
    let select_w = Workload::generate(cfg.n_out_of_cache, cfg.seed);
    if let Some(choice) = atlas_best(kernel, mach, Context::OutOfCache, &select_w, &timer) {
        if let Some(t) = time_compiled(&choice.compiled, kernel, &w, ctx, mach, &timer) {
            cycles.insert(Method::Atlas, t);
        }
        atlas_variant = Some(choice.variant);
    }
    let opts = cfg.tune_options(ctx);
    if let Ok(c) = time_fko_defaults(kernel, mach, ctx, &opts) {
        cycles.insert(Method::Fko, c);
    }
    let tune_outcome = tune(kernel, mach, ctx, &opts).ok();
    if let Some(t) = &tune_outcome {
        cycles.insert(Method::Ifko, t.cycles);
    }

    KernelRow { kernel, cycles, atlas_variant, tune: tune_outcome }
}

/// Run the full 14-kernel sweep.
pub fn run_sweep(mach: &MachineConfig, ctx: Context, cfg: &ExpConfig) -> Vec<KernelRow> {
    ALL_KERNELS
        .iter()
        .map(|k| {
            eprintln!("  ... {} on {} ({})", k.name(), mach.name, ctx.label());
            run_methods(*k, mach, ctx, cfg)
        })
        .collect()
}

/// Average of percent-of-best (the paper's AVG) and the vectorizable-only
/// average (VAVG: everything except iamax, which neither icc nor iFKO
/// vectorize).
pub fn averages(rows: &[KernelRow], m: Method) -> (f64, f64) {
    let all: Vec<f64> = rows.iter().map(|r| r.percent(m)).collect();
    let avg = all.iter().sum::<f64>() / all.len().max(1) as f64;
    let vecd: Vec<f64> = rows
        .iter()
        .filter(|r| r.kernel.op != ifko_blas::BlasOp::Iamax)
        .map(|r| r.percent(m))
        .collect();
    let vavg = vecd.iter().sum::<f64>() / vecd.len().max(1) as f64;
    (avg, vavg)
}

/// Render a Figures-2/3/4-style table: % of best per kernel and method,
/// plus AVG and VAVG columns.
pub fn format_relative_table(title: &str, rows: &[KernelRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{:<10}", "method");
    for r in rows {
        let _ = write!(s, "{:>9}", r.label());
    }
    let _ = writeln!(s, "{:>8}{:>8}", "AVG", "VAVG");
    for m in Method::all() {
        let _ = write!(s, "{:<10}", m.label());
        for r in rows {
            let _ = write!(s, "{:>9.1}", r.percent(m));
        }
        let (avg, vavg) = averages(rows, m);
        let _ = writeln!(s, "{avg:>8.1}{vavg:>8.1}");
    }
    s
}

/// Render Table-3-style rows for a sweep.
pub fn format_table3(title: &str, rows: &[KernelRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<8} {:<6} {:>12} {:>12} {:>7}",
        "BLAS", "SV:WNT", "PF X INS:DST", "PF Y INS:DST", "UR:AE"
    );
    for r in rows {
        if let Some(t) = &r.tune {
            // table3_row = "Y:N pfx pfy UR:AE"
            let parts: Vec<&str> = t.table3_row.split_whitespace().collect();
            let _ = writeln!(
                s,
                "{:<8} {:<6} {:>12} {:>12} {:>7}",
                r.kernel.name(),
                parts.first().copied().unwrap_or("-"),
                parts.get(1).copied().unwrap_or("-"),
                parts.get(2).copied().unwrap_or("-"),
                parts.get(3).copied().unwrap_or("-"),
            );
        }
    }
    s
}

/// Figure 7 data: per-kernel speedup of ifko over FKO, decomposed by
/// search phase.
pub fn format_figure7(title: &str, rows: &[KernelRow]) -> String {
    use ifko::search::Phase;
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = write!(s, "{:<10}", "kernel");
    for p in Phase::figure7() {
        let _ = write!(s, "{:>9}", p.label());
    }
    let _ = writeln!(s, "{:>9}", "total");
    let mut sums = vec![0.0f64; Phase::figure7().len()];
    let mut total_sum = 0.0;
    let mut count = 0usize;
    for r in rows {
        let Some(t) = &r.tune else { continue };
        let _ = write!(s, "{:<10}", r.kernel.name());
        for (i, p) in Phase::figure7().iter().enumerate() {
            // Multi-pass searches can visit a phase more than once; the
            // phase's contribution is the product of its passes.
            let g: f64 = t
                .result
                .gains
                .iter()
                .filter(|g| g.phase == *p)
                .map(|g| g.speedup())
                .product();
            sums[i] += g;
            let _ = write!(s, "{:>8.1}%", (g - 1.0) * 100.0);
        }
        let tot = t.result.speedup_over_default();
        total_sum += tot;
        count += 1;
        let _ = writeln!(s, "{:>8.2}x", tot);
    }
    if count > 0 {
        let _ = write!(s, "{:<10}", "average");
        for v in &sums {
            let _ = write!(s, "{:>8.1}%", (v / count as f64 - 1.0) * 100.0);
        }
        let _ = writeln!(s, "{:>8.2}x", total_sum / count as f64);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifko_blas::ops::BlasOp;
    use ifko_xsim::isa::Prec;
    use ifko_xsim::p4e;

    #[test]
    fn run_methods_produces_all_six() {
        let cfg = ExpConfig { n_out_of_cache: 3000, n_in_l2: 512, quick: true, seed: 1 };
        let k = Kernel { op: BlasOp::Dot, prec: Prec::D };
        let row = run_methods(k, &p4e(), Context::OutOfCache, &cfg);
        for m in Method::all() {
            assert!(row.cycles.contains_key(&m), "missing {m:?}");
        }
        assert!(row.percent(Method::Ifko) > 0.0);
        let best = row.best_cycles();
        assert!(row.cycles.values().all(|&c| c >= best));
    }

    #[test]
    fn relative_table_formats() {
        let cfg = ExpConfig { n_out_of_cache: 2000, n_in_l2: 512, quick: true, seed: 1 };
        let k = Kernel { op: BlasOp::Asum, prec: Prec::S };
        let rows = vec![run_methods(k, &p4e(), Context::InL2, &cfg)];
        let t = format_relative_table("test", &rows);
        assert!(t.contains("ifko"));
        assert!(t.contains("sasum"));
        assert!(t.contains("AVG"));
    }
}
