//! Criterion benches over the simulated kernels: for each representative
//! kernel, measure the *host-side* cost of simulating the FKO-default and
//! ifko-tuned variants (the simulated cycle counts themselves are printed
//! by the figure binaries; these benches track the speed of the
//! reproduction pipeline itself and catch performance regressions in the
//! simulator and compiler).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifko::runner::{run_once, Context, KernelArgs};
use ifko::TuneConfig;
use ifko_blas::hil_src::hil_source;
use ifko_blas::ops::BlasOp;
use ifko_blas::{Kernel, Workload};
use ifko_fko::compile_defaults;
use ifko_xsim::isa::Prec;
use ifko_xsim::p4e;

fn bench_simulated_kernels(c: &mut Criterion) {
    let mach = p4e();
    let n = 4096usize;
    let w = Workload::generate(n, 7);
    let mut group = c.benchmark_group("simulate");
    for op in [BlasOp::Dot, BlasOp::Axpy, BlasOp::Copy, BlasOp::Iamax] {
        let k = Kernel { op, prec: Prec::D };
        let src = hil_source(op, Prec::D);
        let compiled = compile_defaults(&src, &mach).unwrap();
        group.bench_with_input(
            BenchmarkId::new("fko_defaults", k.name()),
            &compiled,
            |b, cc| {
                b.iter(|| {
                    let args = KernelArgs {
                        kernel: k,
                        workload: &w,
                        context: Context::OutOfCache,
                    };
                    run_once(cc, &args, &mach).unwrap().stats.cycles
                })
            },
        );
    }
    group.finish();
}

fn bench_compile_pipeline(c: &mut Criterion) {
    let mach = p4e();
    let src = hil_source(BlasOp::Dot, Prec::D);
    c.bench_function("compile/ddot_defaults", |b| {
        b.iter(|| compile_defaults(&src, &mach).unwrap().program.len())
    });
}

fn bench_search(c: &mut Criterion) {
    let mach = p4e();
    let k = Kernel {
        op: BlasOp::Asum,
        prec: Prec::D,
    };
    let mut group = c.benchmark_group("search");
    group.sample_size(10);
    group.bench_function("quick_line_search/dasum", |b| {
        b.iter(|| {
            TuneConfig::quick(2048)
                .machine(mach.clone())
                .tune(k)
                .unwrap()
                .result
                .best_cycles
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulated_kernels,
    bench_compile_pipeline,
    bench_search
);
criterion_main!(benches);
