//! Criterion benches of the simulator substrate itself: instruction
//! throughput of the interpreter and the cost of the cache/bus model.
//! These guard the reproduction's own performance (the empirical search
//! runs hundreds of simulated timings per kernel).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ifko_xsim::isa::Inst::*;
use ifko_xsim::isa::{Addr, Cond, FReg, IReg, Prec, RegOrMem};
use ifko_xsim::{p4e, Asm, Cpu, Memory};

fn ddot_prog(unroll: usize) -> ifko_xsim::Program {
    let mut a = Asm::new();
    a.push(FZero(FReg(7)));
    let top = a.here();
    for u in 0..unroll {
        let off = (u * 8) as i64;
        a.push(FLd(FReg(0), Addr::base_disp(IReg(0), off), Prec::D));
        a.push(FMul(
            FReg(0),
            RegOrMem::Mem(Addr::base_disp(IReg(1), off)),
            Prec::D,
        ));
        a.push(FAdd(FReg(7), RegOrMem::Reg(FReg(0)), Prec::D));
    }
    a.push(IAddImm(IReg(0), (unroll * 8) as i64));
    a.push(IAddImm(IReg(1), (unroll * 8) as i64));
    a.push(ISubImm(IReg(2), unroll as i64));
    a.push(ICmpImm(IReg(2), 0));
    a.push(Jcc(Cond::Gt, top));
    a.push(Halt);
    a.finish()
}

fn bench_interpreter_throughput(c: &mut Criterion) {
    let n = 16_384usize;
    let prog = ddot_prog(4);
    let mut mem = Memory::new(4 << 20);
    let xa = mem.alloc_vector(n as u64, 8);
    let ya = mem.alloc_vector(n as u64, 8);
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    mem.store_f64_slice(xa, &data).unwrap();
    mem.store_f64_slice(ya, &data).unwrap();

    // Dynamic instruction count for throughput reporting.
    let dyn_insts = {
        let mut cpu = Cpu::new(p4e());
        cpu.set_ireg(IReg(0), xa as i64);
        cpu.set_ireg(IReg(1), ya as i64);
        cpu.set_ireg(IReg(2), n as i64);
        cpu.run(&prog, &mut mem).unwrap().insts
    };

    let mut group = c.benchmark_group("interpreter");
    group.throughput(Throughput::Elements(dyn_insts));
    group.bench_function("ddot_16k_warm", |b| {
        let mut cpu = Cpu::new(p4e());
        b.iter(|| {
            cpu.set_ireg(IReg(0), xa as i64);
            cpu.set_ireg(IReg(1), ya as i64);
            cpu.set_ireg(IReg(2), n as i64);
            cpu.run(&prog, &mut mem).unwrap().cycles
        })
    });
    group.bench_function("ddot_16k_cold", |b| {
        let mut cpu = Cpu::new(p4e());
        b.iter(|| {
            cpu.flush_caches();
            cpu.set_ireg(IReg(0), xa as i64);
            cpu.set_ireg(IReg(1), ya as i64);
            cpu.set_ireg(IReg(2), n as i64);
            cpu.run(&prog, &mut mem).unwrap().cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter_throughput);
criterion_main!(benches);
