//! Ablation benches for the design choices DESIGN.md calls out. Each
//! prints the simulated-cycle consequences of flipping one mechanism:
//!
//! * prefetch drop-on-busy-bus vs always-accepted;
//! * interaction-aware (restricted 2-D) line search vs pure 1-D;
//! * min-of-6 timing vs single noisy timing;
//! * the CISC memory-operand peephole on/off.
//!
//! These are Criterion benches so they run under `cargo bench`, but the
//! interesting output is the printed simulated-cycle comparison (host
//! nanoseconds are incidental here).

use criterion::{criterion_group, criterion_main, Criterion};
use ifko::runner::{run_once, Context, KernelArgs};
use ifko::search::{line_search, SearchOptions};
use ifko::Timer;
use ifko_blas::hil_src::hil_source;
use ifko_blas::ops::BlasOp;
use ifko_blas::{Kernel, Workload};
use ifko_fko::{analyze_kernel, compile_ir, TransformParams};
use ifko_xsim::isa::Prec;
use ifko_xsim::p4e;

/// Prefetch dropping: out-of-cache dot with tuned prefetch, with and
/// without the drop-when-busy rule.
fn ablation_prefetch_drop(c: &mut Criterion) {
    let k = Kernel {
        op: BlasOp::Dot,
        prec: Prec::D,
    };
    let w = Workload::generate(20_000, 5);
    let src = hil_source(k.op, k.prec);

    let mut cycles = Vec::new();
    for drop in [true, false] {
        let mut mach = p4e();
        mach.drop_prefetch_when_busy = drop;
        let (ir, rep) = analyze_kernel(&src, &mach).unwrap();
        let mut p = TransformParams::defaults(&rep, &mach);
        for s in &mut p.prefetch {
            s.dist = 256;
        }
        let compiled = compile_ir(&ir, &p, &rep).unwrap();
        let args = KernelArgs {
            kernel: k,
            workload: &w,
            context: Context::OutOfCache,
        };
        let out = run_once(&compiled, &args, &mach).unwrap();
        cycles.push((drop, out.stats.cycles, out.stats.prefetch_dropped));
    }
    println!("\n[ablation] prefetch drop-on-busy: {cycles:?}");
    c.bench_function("ablation/prefetch_drop_flag", |b| {
        b.iter(|| {
            let mach = p4e();
            let (ir, rep) = analyze_kernel(&src, &mach).unwrap();
            compile_ir(&ir, &TransformParams::defaults(&rep, &mach), &rep)
                .unwrap()
                .program
                .len()
        })
    });
}

/// Search refinement: pure 1-D line search vs interaction-aware re-sweeps
/// (the paper's "restricted 2-D search" modification).
fn ablation_search_refinement(c: &mut Criterion) {
    let mach = p4e();
    let k = Kernel {
        op: BlasOp::Iamax,
        prec: Prec::S,
    };
    let w = Workload::generate(20_000, 5);
    let src = hil_source(k.op, k.prec);
    let (ir, rep) = analyze_kernel(&src, &mach).unwrap();

    let mut results = Vec::new();
    for refine in [false, true] {
        let mut opts = SearchOptions::quick();
        opts.timer = Timer::exact();
        opts.refine = refine;
        let r = line_search(&ir, &rep, k, &w, Context::OutOfCache, &mach, &opts);
        results.push((refine, r.best_cycles, r.evaluations));
    }
    println!("\n[ablation] line-search refinement (refine, cycles, evals): {results:?}");
    c.bench_function("ablation/search_refinement", |b| {
        let mut opts = SearchOptions::quick();
        opts.timer = Timer::exact();
        b.iter(|| line_search(&ir, &rep, k, &w, Context::OutOfCache, &mach, &opts).best_cycles)
    });
}

/// Timing protocol: single noisy timing vs the paper's min-of-6.
fn ablation_min_of_reps(c: &mut Criterion) {
    let mach = p4e();
    let k = Kernel {
        op: BlasOp::Dot,
        prec: Prec::D,
    };
    let w = Workload::generate(4096, 5);
    let src = hil_source(k.op, k.prec);
    let compiled = ifko_fko::compile_defaults(&src, &mach).unwrap();
    let args = KernelArgs {
        kernel: k,
        workload: &w,
        context: Context::OutOfCache,
    };

    let exact = Timer::exact().time(&compiled, &args, &mach).unwrap();
    let one = Timer {
        reps: 1,
        interference: 0.05,
        seed: 9,
    }
    .time(&compiled, &args, &mach)
    .unwrap();
    let six = Timer {
        reps: 6,
        interference: 0.05,
        seed: 9,
    }
    .time(&compiled, &args, &mach)
    .unwrap();
    println!("\n[ablation] timing protocol: exact={exact} one_rep={one} min_of_6={six}");
    c.bench_function("ablation/min_of_reps", |b| {
        b.iter(|| Timer::default().time(&compiled, &args, &mach).unwrap())
    });
}

/// The x86 CISC memory-operand peephole (paper §2.2.4): on vs off.
fn ablation_cisc_memops(c: &mut Criterion) {
    let mach = p4e();
    let k = Kernel {
        op: BlasOp::Dot,
        prec: Prec::D,
    };
    let w = Workload::generate(2048, 5);
    let src = hil_source(k.op, k.prec);
    let (ir, rep) = analyze_kernel(&src, &mach).unwrap();

    let mut results = Vec::new();
    for cisc in [true, false] {
        let mut p = TransformParams::defaults(&rep, &mach);
        p.cisc_memops = cisc;
        let compiled = compile_ir(&ir, &p, &rep).unwrap();
        let args = KernelArgs {
            kernel: k,
            workload: &w,
            context: Context::InL2,
        };
        let out = run_once(&compiled, &args, &mach).unwrap();
        results.push((
            cisc,
            out.stats.cycles,
            out.stats.insts,
            compiled.program.len(),
        ));
    }
    println!("\n[ablation] CISC mem-operand fusion (on, cycles, dyn insts, static): {results:?}");
    c.bench_function("ablation/cisc_memops", |b| {
        let p = TransformParams::defaults(&rep, &mach);
        b.iter(|| compile_ir(&ir, &p, &rep).unwrap().program.len())
    });
}

criterion_group!(
    benches,
    ablation_prefetch_drop,
    ablation_search_refinement,
    ablation_min_of_reps,
    ablation_cisc_memops
);
criterion_main!(benches);
