//! Compare all six tuning methodologies (the paper's figure legend) on a
//! single kernel/machine/context of your choice.
//!
//! ```text
//! cargo run --release -p ifko-bench --example compare_methods -- ddot p4e oc
//! cargo run --release -p ifko-bench --example compare_methods -- saxpy opteron ic
//! ```

use ifko::runner::Context;
use ifko_baselines::Method;
use ifko_bench::{run_methods, ExpConfig};
use ifko_blas::ALL_KERNELS;
use ifko_xsim::{opteron, p4e};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kname = args.get(1).map(String::as_str).unwrap_or("ddot");
    let mname = args.get(2).map(String::as_str).unwrap_or("p4e");
    let cname = args.get(3).map(String::as_str).unwrap_or("oc");

    let kernel = ALL_KERNELS
        .iter()
        .find(|k| k.name() == kname)
        .copied()
        .unwrap_or_else(|| {
            eprintln!("unknown kernel `{kname}`; one of:");
            for k in ALL_KERNELS {
                eprint!(" {}", k.name());
            }
            eprintln!();
            std::process::exit(1);
        });
    let mach = match mname {
        "p4e" => p4e(),
        "opteron" | "opt" => opteron(),
        other => {
            eprintln!("unknown machine `{other}` (p4e | opteron)");
            std::process::exit(1);
        }
    };
    let ctx = match cname {
        "oc" => Context::OutOfCache,
        "ic" => Context::InL2,
        other => {
            eprintln!("unknown context `{other}` (oc | ic)");
            std::process::exit(1);
        }
    };

    let cfg = ExpConfig::new(true);
    let n = cfg.n_for(ctx);
    println!(
        "{} on {} ({}), N={n}\n",
        kernel.name(),
        mach.name,
        ctx.label()
    );
    let row = run_methods(kernel, &mach, ctx, &cfg);
    let best = row.best_cycles();
    println!(
        "{:<10} {:>12} {:>10} {:>9}",
        "method", "cycles", "c/elem", "% best"
    );
    for m in Method::all() {
        if let Some(&c) = row.cycles.get(&m) {
            println!(
                "{:<10} {:>12} {:>10.2} {:>8.1}%",
                m.label(),
                c,
                c as f64 / n as f64,
                100.0 * best as f64 / c as f64
            );
        }
    }
    if let Some(v) = &row.atlas_variant {
        println!("\nATLAS selected variant: {v}");
    }
    if let Some(t) = &row.tune {
        println!("ifko winning parameters: {}", t.table3_row);
    }
}
