//! A tour of the simulated machine: assemble a tiny program by hand, run
//! it on both machine configurations, and inspect the execution
//! statistics. Useful as a first look at the `ifko-xsim` substrate on its
//! own, independent of the compiler.
//!
//! ```text
//! cargo run --release -p ifko-xsim --example machine_tour
//! ```

use ifko_xsim::isa::Inst::*;
use ifko_xsim::isa::{Addr, Cond, FReg, IReg, Prec, RegOrMem};
use ifko_xsim::{asm, machine, Asm, Cpu, Memory};

fn main() {
    // y[i] = 2*x[i] + y[i] over 4096 doubles, scalar, unrolled by 4.
    let n = 4096usize;
    let x = IReg(0);
    let y = IReg(1);
    let cnt = IReg(2);

    let mut a = Asm::new();
    a.push(FLdImm(FReg(7), 2.0, Prec::D));
    let top = a.here();
    for u in 0..4 {
        let off = (u * 8) as i64;
        a.push(FLd(FReg(0), Addr::base_disp(x, off), Prec::D));
        a.push(FMul(FReg(0), RegOrMem::Reg(FReg(7)), Prec::D));
        a.push(FAdd(
            FReg(0),
            RegOrMem::Mem(Addr::base_disp(y, off)),
            Prec::D,
        ));
        a.push(FSt(Addr::base_disp(y, off), FReg(0), Prec::D));
    }
    a.push(IAddImm(x, 32));
    a.push(IAddImm(y, 32));
    a.push(ISubImm(cnt, 4));
    a.push(ICmpImm(cnt, 0));
    a.push(Jcc(Cond::Gt, top));
    a.push(Halt);
    let prog = a.finish();

    println!("program ({} instructions):\n", prog.len());
    for line in asm::disassemble(&prog).lines().take(12) {
        println!("  {line}");
    }
    println!("  ...\n");

    for cfg in machine::all_machines() {
        let mut mem = Memory::new(4 << 20);
        let xa = mem.alloc_vector(n as u64, 8);
        let ya = mem.alloc_vector(n as u64, 8);
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.001).collect();
        let ys: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 * 0.0005).collect();
        mem.store_f64_slice(xa, &xs).unwrap();
        mem.store_f64_slice(ya, &ys).unwrap();

        let mut cpu = Cpu::new(cfg.clone());
        cpu.flush_caches();
        cpu.set_ireg(x, xa as i64);
        cpu.set_ireg(y, ya as i64);
        cpu.set_ireg(cnt, n as i64);
        let stats = cpu.run(&prog, &mut mem).expect("run");

        // Check the arithmetic really happened.
        let out = mem.load_f64_slice(ya, n).unwrap();
        assert!(out.iter().zip(0..n).all(|(v, i)| *v == 2.0 * xs[i] + ys[i]));

        println!("{} @ {} MHz:", cfg.name, cfg.mhz);
        println!(
            "  cycles            : {} ({:.2}/element)",
            stats.cycles,
            stats.cycles as f64 / n as f64
        );
        println!("  dynamic insts     : {}", stats.insts);
        println!(
            "  L1 hits/misses    : {}/{}",
            stats.l1_hits, stats.l1_misses
        );
        println!(
            "  L2 hits/misses    : {}/{}",
            stats.l2_hits, stats.l2_misses
        );
        println!(
            "  bus read/written  : {}/{} bytes",
            stats.bus_read_bytes, stats.bus_write_bytes
        );
        println!("  hw prefetch fills : {}", stats.hw_prefetches);
        println!(
            "  wall time @ clock : {:.1} us\n",
            stats.cycles as f64 / cfg.mhz as f64
        );
    }
}
