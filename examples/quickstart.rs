//! Quickstart: empirically tune one BLAS kernel on the simulated Pentium
//! 4E and print what the search found.
//!
//! ```text
//! cargo run --release -p ifko --example quickstart
//! ```

use ifko::prelude::*;

fn main() {
    let machine = p4e();
    let kernel = Kernel {
        op: BlasOp::Dot,
        prec: Prec::D,
    };

    println!(
        "Tuning {} on {} (out-of-cache, N=40000)...\n",
        kernel.name(),
        machine.name
    );
    let outcome = TuneConfig::paper()
        .machine(machine)
        .n(40_000)
        .tune(kernel)
        .expect("tuning failed");

    println!(
        "FKO static defaults : {:>9} cycles",
        outcome.result.default_cycles
    );
    println!(
        "iFKO empirical best : {:>9} cycles  ({:.2}x speedup, {:.0} MFLOPS)",
        outcome.result.best_cycles,
        outcome.result.speedup_over_default(),
        outcome.mflops
    );
    println!("candidates evaluated: {:>9}", outcome.result.evaluations);
    println!("\nwinning parameters (Table-3 format: SV:WNT PF_X PF_Y UR:AE):");
    println!("  {}", outcome.table3_row);

    println!("\nper-phase gains of the line search:");
    for g in &outcome.result.gains {
        println!(
            "  {:<7} {:>7.1}%",
            g.phase.label(),
            (g.speedup() - 1.0) * 100.0
        );
    }

    println!(
        "\ngenerated code ({} instructions):",
        outcome.compiled.program.len()
    );
    let asm = ifko_xsim::asm::disassemble(&outcome.compiled.program);
    for line in asm.lines().take(28) {
        println!("  {line}");
    }
    if asm.lines().count() > 28 {
        println!("  ...");
    }
}
