//! Tune a *user-written* kernel — the point of moving the search into the
//! compiler rather than a library generator: "in keeping the search in the
//! compiler, we hope to generalize it enough to tune almost any floating
//! point kernel."
//!
//! The kernel below is `waxpby` (w = alpha*x + y elementwise into a third
//! vector), which is not in the Level 1 BLAS suite this repo ships. We
//! drive FKO's analysis, the transformation pipeline, and a hand-rolled
//! parameter sweep directly through the public API.
//!
//! ```text
//! cargo run --release -p ifko --example custom_kernel
//! ```

use ifko_fko::ir::{PrefKind, PtrId};
use ifko_fko::{ArgSlot, CompileOpts, CompileSession, PrefSpec, TransformParams};
use ifko_xsim::{p4e, Cpu, FReg, IReg, Memory};

const WAXPBY: &str = r#"
ROUTINE waxpy(alpha, X, Y, W, N);
PARAMS :: alpha = DOUBLE, X = DOUBLE_PTR, Y = DOUBLE_PTR, W = DOUBLE_PTR:OUT, N = INT;
SCALARS :: x = DOUBLE, y = DOUBLE;
ROUT_BEGIN
  !! TUNE LOOP
  LOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x *= alpha;
    y = Y[0];
    x += y;
    W[0] = x;
    X += 1;
    Y += 1;
    W += 1;
  LOOP_END
ROUT_END
"#;

fn main() {
    let mach = p4e();
    let sess = CompileSession::from_source(WAXPBY, &mach).expect("front end");
    let rep = sess.report().clone();

    println!("FKO analysis of the custom kernel:");
    println!("  vectorizable : {:?}", rep.vectorizable.is_ok());
    println!("  prefetch cand: {} arrays", rep.pf_candidates.len());
    println!("  WNT candidate: {} arrays", rep.wnt_candidates.len());

    // Prepare a workload.
    let n: usize = 30_000;
    let mut mem = Memory::new(16 << 20);
    let xa = mem.alloc_vector(n as u64, 8);
    let ya = mem.alloc_vector(n as u64, 8);
    let wa = mem.alloc_vector(n as u64, 8);
    let xs: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.25 - 1.5).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i % 17) as f64 * 0.125 - 1.0).collect();
    mem.store_f64_slice(xa, &xs).unwrap();
    mem.store_f64_slice(ya, &ys).unwrap();
    let alpha = 1.25f64;

    // Sweep a few hand-picked parameter points through the public API.
    let mut candidates: Vec<(String, TransformParams)> = Vec::new();
    candidates.push(("scalar".into(), TransformParams::off()));
    candidates.push(("defaults".into(), TransformParams::defaults(&rep, &mach)));
    for (wnt, dist) in [(false, 256), (true, 256), (true, 384)] {
        let mut p = TransformParams::defaults(&rep, &mach);
        p.wnt = wnt;
        for s in &mut p.prefetch {
            s.dist = dist;
        }
        p.unroll = 8;
        candidates.push((format!("SV+UR8 wnt={wnt} pf={dist}"), p));
    }
    // One explicit per-array spec: prefetch X and Y, not W.
    {
        let mut p = TransformParams::defaults(&rep, &mach);
        p.prefetch = vec![
            PrefSpec {
                ptr: PtrId(0),
                kind: Some(PrefKind::Nta),
                dist: 256,
            },
            PrefSpec {
                ptr: PtrId(1),
                kind: Some(PrefKind::Nta),
                dist: 256,
            },
            PrefSpec {
                ptr: PtrId(2),
                kind: None,
                dist: 0,
            },
        ];
        p.wnt = true;
        candidates.push(("pf(X,Y) only + WNT".into(), p));
    }

    println!("\n{:<24} {:>12} {:>10}", "variant", "cycles", "c/elem");
    let mut best = (String::new(), u64::MAX);
    for (name, params) in candidates {
        let compiled = match sess.compile(&params, CompileOpts::default()) {
            Ok(c) => c,
            Err(e) => {
                println!("{name:<24} compile error: {e}");
                continue;
            }
        };
        // Bind args per the compiled convention: alpha, X, Y, W, N.
        let mut cpu = Cpu::new(mach.clone());
        cpu.flush_caches();
        let mut ptrs = [xa, ya, wa].into_iter();
        for slot in &compiled.arg_convention {
            match slot {
                ArgSlot::PtrReg(r) => cpu.set_ireg(IReg(*r), ptrs.next().unwrap() as i64),
                ArgSlot::IntReg(r) => cpu.set_ireg(IReg(*r), n as i64),
                ArgSlot::FReg(r) => cpu.set_freg_f64(FReg(*r), alpha),
            }
        }
        let stats = cpu.run(&compiled.program, &mut mem).expect("run");
        // Verify against the obvious reference.
        let w = mem.load_f64_slice(wa, n).unwrap();
        for i in 0..n {
            assert_eq!(w[i], alpha * xs[i] + ys[i], "mismatch at {i} for {name}");
        }
        println!(
            "{:<24} {:>12} {:>10.2}",
            name,
            stats.cycles,
            stats.cycles as f64 / n as f64
        );
        if stats.cycles < best.1 {
            best = (name, stats.cycles);
        }
    }
    println!("\nbest variant: {} ({} cycles)", best.0, best.1);
}
