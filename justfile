# Developer entry points. `just check` is the merge gate.

# fmt + clippy + tests + harness smoke
check:
    scripts/check.sh

fmt:
    cargo fmt --all

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

test:
    cargo test --workspace --release -q

# Front end + analysis + IR verifier over the checked-in kernels
lint:
    cargo run --release -p ifko-cli -- lint kernels/*.hil

# Randomized verifier property test (in-repo rng, no extra deps)
fuzz:
    cargo test --release -p ifko-fko --features fuzz --test prop_verify

# Chaos smoke: tune one kernel under seeded fault injection; the search
# must recover from every fault and persist a winner
chaos:
    cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
        --chaos 7 --max-retries 2 --db results/db

# Worker-pool smoke: tune with candidate evaluation dispatched to two
# `ifko worker` child processes (bit-identical to an in-process run)
workers:
    cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
        --workers 2

# Compiler-throughput bench (candidates/sec) + regression gate against
# the committed BENCH_pipeline.json baseline
bench-pipeline:
    scripts/bench_compare.sh

# Search-strategy head-to-head on swap/dot, persisting winners to the db
strategies:
    cargo run --release -p ifko-bench --bin strategies -- --db results/db

# Regenerate every paper table/figure at full scale (slow)
figures:
    for b in table1 table2 table3 figure2 figure3 figure4 figure4b figure5 figure6 figure7; do \
        cargo run --release -p ifko-bench --bin $b > results/$b.txt; \
    done

# Trace + metrics for a quick figure7 run, then analyze the trace
observe:
    mkdir -p results/traces
    cargo run --release -p ifko-bench --bin figure7 -- --quick \
        --metrics results/traces/figure7-quick-metrics.json
    cargo run --release -p ifko-cli -- report results/traces/figure7-quick.jsonl

# Tune one kernel with every observability sink on, then explain the
# winner (microarchitectural attribution + bottleneck classification)
# and validate the Chrome/Perfetto trace. Open the .chrome.json file in
# ui.perfetto.dev to browse the search timeline.
explain:
    mkdir -p results/traces
    cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 --jobs 2 \
        --trace results/traces/ddot.jsonl \
        --trace-chrome results/traces/ddot.chrome.json \
        --timeseries results/traces/ddot-ts.jsonl
    cargo run --release -p ifko-cli -- explain results/traces/ddot.jsonl
    cargo run --release -p ifko-cli -- explain --check-chrome results/traces/ddot.chrome.json

# Long-running tuning daemon on the conventional socket and db; clients
# reach it with `ifko tune ... --remote results/ifkod.sock` and the
# control plane with `ifko daemon <cmd>`. Stop with `just daemon-stop`.
serve:
    cargo run --release -p ifko-daemon --bin ifkod -- \
        --socket results/ifkod.sock --db results/db --cache results/cache

daemon-stop:
    cargo run --release -p ifko-cli -- daemon stop --socket results/ifkod.sock

# Tuned-results database statistics: live records, per-shard line
# counts, dead-record ratio. `just db-compact` rewrites the shards.
db-stats:
    cargo run --release -p ifko-cli -- db stats

db-compact:
    cargo run --release -p ifko-cli -- db compact

# Export the tuned-results db as a checksummed tune-cache artifact
# (import elsewhere with `ifko install FILE` — records re-verify there)
pack out="results/tunes.ifko":
    cargo run --release -p ifko-cli -- pack --out {{out}}

# Drop the persistent evaluation cache and sample traces
clean-cache:
    rm -rf results/cache results/traces
