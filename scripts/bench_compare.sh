#!/usr/bin/env bash
# Pipeline-throughput regression gate.
#
# Runs the `pipeline` bench (candidates/sec through the full compile and
# compile+eval paths, per kernel x machine model) and compares every row
# against the committed baseline `BENCH_pipeline.json`. Fails when any
# pair's compile_cps drops more than IFKO_BENCH_TOL percent (default 10)
# below the baseline, after normalizing both sides by the per-row `calib`
# machine-speed spin the bench records — so host-speed drift (shared
# runners, CPU steal, frequency scaling) cancels and the gate sees only
# changes in the pipeline itself. eval_cps is reported but not gated: the
# simulate leg's rate swings ~20% run-to-run with harness memory state,
# while the normalized compile leg holds within a few percent under
# min-of-reps. Faster-than-baseline is never an error.
#
#   scripts/bench_compare.sh                  # bench + compare
#   scripts/bench_compare.sh current.json     # compare an existing run
#   IFKO_BENCH_TOL=25 scripts/bench_compare.sh   # looser gate (noisy CI)
#
# The baseline is refreshed by copying a trusted run over it:
#   IFKO_BENCH_SECS=0.5 cargo run --release -p ifko-bench --bin pipeline
#   cp results/BENCH_pipeline.json BENCH_pipeline.json
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="BENCH_pipeline.json"
tol="${IFKO_BENCH_TOL:-10}"

if [[ $# -ge 1 ]]; then
    current="$1"
    attempts=1
else
    current="results/BENCH_pipeline.json"
    # Transient host slowdowns (CPU-steal bursts on shared runners) can
    # fake a regression even after calib normalization; a real regression
    # reproduces on every attempt.
    attempts="${IFKO_BENCH_ATTEMPTS:-3}"
fi

[[ -s $baseline ]] || { echo "bench_compare: missing baseline $baseline" >&2; exit 2; }

# Rows are one JSON object per line (hand-rolled writer, schema 1):
# extract kernel, machine, compile_cps, eval_cps, calib into
# "k m c e cal" lines. Baselines recorded before the calib field existed
# fall back to 1 (no normalization).
extract() {
    awk '
        /"kernel":/ {
            k = m = c = e = ""; cal = 1
            if (match($0, /"kernel": "[^"]*"/))  { k = substr($0, RSTART+11, RLENGTH-12) }
            if (match($0, /"machine": "[^"]*"/)) { m = substr($0, RSTART+12, RLENGTH-13) }
            if (match($0, /"compile_cps": [0-9.]+/)) { c = substr($0, RSTART+15, RLENGTH-15) }
            if (match($0, /"eval_cps": [0-9.]+/))    { e = substr($0, RSTART+12, RLENGTH-12) }
            if (match($0, /"calib": [0-9.]+/))       { cal = substr($0, RSTART+9, RLENGTH-9) }
            if (k != "" && m != "") print k, m, c, e, cal
        }
    ' "$1"
}

base_rows="$(extract "$baseline")"
[[ -n $base_rows ]] || { echo "bench_compare: no rows parsed from $baseline" >&2; exit 2; }

compare_once() {
cur_rows="$(extract "$current")"
[[ -n $cur_rows ]] || { echo "bench_compare: no rows parsed from $current" >&2; exit 2; }

# COMPILE/EVAL ratios are calib-normalized: (now_cps/now_calib) divided
# by (base_cps/base_calib).
printf '%-8s %-8s %12s %12s %9s %9s   %s\n' KERNEL MACHINE "BASE c/s" "NOW c/s" COMPILE EVAL VERDICT
fail=0
while read -r k m bc be bcal; do
    line="$(printf '%s\n' "$cur_rows" | awk -v k="$k" -v m="$m" '$1==k && $2==m {print; exit}')"
    if [[ -z $line ]]; then
        printf '%-8s %-8s %12s %12s %9s %9s   %s\n' "$k" "$m" "$bc" "-" "-" "-" "MISSING"
        fail=1
        continue
    fi
    read -r _ _ cc ce ccal <<<"$line"
    verdict="$(awk -v bc="$bc" -v cc="$cc" -v bcal="$bcal" -v ccal="$ccal" -v tol="$tol" '
        BEGIN {
            if (cc / ccal < (bc / bcal) * (1 - tol / 100.0)) print "REGRESSED"; else print "ok"
        }')"
    cratio="$(awk -v bc="$bc" -v cc="$cc" -v bcal="$bcal" -v ccal="$ccal" \
        'BEGIN { printf "%.2fx", (cc / ccal) / (bc / bcal) }')"
    eratio="$(awk -v be="$be" -v ce="$ce" -v bcal="$bcal" -v ccal="$ccal" \
        'BEGIN { printf "%.2fx", (ce / ccal) / (be / bcal) }')"
    printf '%-8s %-8s %12s %12s %9s %9s   %s\n' "$k" "$m" "$bc" "$cc" "$cratio" "$eratio" "$verdict"
    [[ $verdict == ok ]] || fail=1
done <<<"$base_rows"
return "$fail"
}

for ((i = 1; i <= attempts; i++)); do
    if [[ $# -lt 1 ]]; then
        cargo run --release -p ifko-bench --bin pipeline -- --out "$current" >/dev/null
    fi
    [[ -s $current ]] || { echo "bench_compare: missing current run $current" >&2; exit 2; }
    if compare_once; then
        echo
        echo "bench_compare: no regression beyond ${tol}% (baseline $baseline)"
        exit 0
    fi
    if ((i < attempts)); then
        echo
        echo "bench_compare: attempt $i/$attempts regressed; re-benching..."
    fi
done
echo
echo "bench_compare: pipeline throughput regressed more than ${tol}% vs $baseline on all $attempts attempts" >&2
exit 1
