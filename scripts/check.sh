#!/usr/bin/env bash
# The one-stop gate: formatting, lints, the full offline test suite, and a
# quick end-to-end harness smoke (table3 --quick, which also exercises the
# persistent evaluation cache). Everything here must pass before a merge.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test --workspace --release -q

step "harness smoke: table3 --quick"
cargo run --release -p ifko-bench --bin table3 -- --quick >/dev/null

step "harness smoke: figure7 --quick (sample trace)"
cargo run --release -p ifko-bench --bin figure7 -- --quick >/dev/null
test -s results/traces/figure7-quick.jsonl

printf '\nAll checks passed.\n'
