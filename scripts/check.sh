#!/usr/bin/env bash
# The one-stop gate: formatting, lints, the full offline test suite, and a
# quick end-to-end harness smoke (table3 --quick, which also exercises the
# persistent evaluation cache). Everything here must pass before a merge.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test --workspace --release -q

step "verifier property test (fuzz feature)"
cargo test --release -p ifko-fko --features fuzz --test prop_verify -q

step "ifko lint kernels/*.hil"
cargo run --release -p ifko-cli -- lint kernels/*.hil
cargo run --release -p ifko-cli -- lint kernels/*.hil --format json >/dev/null

step "harness smoke: table3 --quick (+trace +metrics)"
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
cargo run --release -p ifko-bench --bin table3 -- --quick \
    --trace "$obs_tmp/table3.jsonl" --metrics "$obs_tmp/table3-metrics.json" >/dev/null
test -s "$obs_tmp/table3.jsonl"
grep -q ifko_engine_evals_total "$obs_tmp/table3-metrics.json"

step "harness smoke: ifko report (trace analyzer)"
cargo run --release -p ifko-cli -- report "$obs_tmp/table3.jsonl" | grep -q "stage time attribution"
cargo run --release -p ifko-cli -- report "$obs_tmp/table3.jsonl" --format json >/dev/null

step "harness smoke: ifko explain + --trace-chrome + --timeseries"
cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 512 --jobs 2 \
    --trace "$obs_tmp/explain.jsonl" --trace-chrome "$obs_tmp/explain.chrome.json" \
    --timeseries "$obs_tmp/explain-ts.jsonl" >/dev/null
test -s "$obs_tmp/explain-ts.jsonl"
cargo run --release -p ifko-cli -- explain "$obs_tmp/explain.jsonl" \
    | grep -q "per-transform attribution"
cargo run --release -p ifko-cli -- explain "$obs_tmp/explain.jsonl" --format json >/dev/null
# The Chrome trace must parse as JSON with properly nested spans — the
# validator is built in, so the gate needs no external JSON tooling.
cargo run --release -p ifko-cli -- explain --check-chrome "$obs_tmp/explain.chrome.json"

step "harness smoke: strategies --quick (search strategies + tuned db)"
cargo run --release -p ifko-bench --bin strategies -- --quick \
    --strategies line,random --budget 64 --db "$obs_tmp/db" > "$obs_tmp/strategies.txt"
grep -q '^line ' "$obs_tmp/strategies.txt"
grep -q '^random ' "$obs_tmp/strategies.txt"
# Winners persist into the sharded journal layout.
cat "$obs_tmp/db/shard-"*.jsonl | grep -q '"key"'
cargo run --release -p ifko-cli -- db stats --db "$obs_tmp/db" > "$obs_tmp/db-stats.txt"
grep -q 'live records' "$obs_tmp/db-stats.txt"

step "harness smoke: ifko tune --chaos (fault injection + recovery)"
cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
    --chaos 7 --max-retries 2 --db "$obs_tmp/chaosdb" > "$obs_tmp/chaos.txt"
grep -q 'iFKO best' "$obs_tmp/chaos.txt"
cat "$obs_tmp/chaosdb/shard-"*.jsonl | grep -q '"key"'

step "harness smoke: ifko tune --workers (worker-process pool)"
cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
    --workers 2 > "$obs_tmp/workers.txt"
grep -q 'iFKO best' "$obs_tmp/workers.txt"
# Same kernel/size in-process: the pooled winner line must match
# bit-for-bit (the merge-determinism invariant, end to end).
cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
    > "$obs_tmp/workers-serial.txt"
diff <(grep 'iFKO best' "$obs_tmp/workers.txt") \
     <(grep 'iFKO best' "$obs_tmp/workers-serial.txt")

step "harness smoke: ifkod daemon (remote tune, warm hit, pack/install)"
daemon_sock="$obs_tmp/ifkod.sock"
cargo run --release -p ifko-daemon --bin ifkod -- \
    --socket "$daemon_sock" --db "$obs_tmp/daemondb" --quiet &
daemon_pid=$!
trap 'rm -rf "$obs_tmp"; kill "$daemon_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do [ -S "$daemon_sock" ] && break; sleep 0.1; done
cargo run --release -p ifko-cli -- daemon ping --socket "$daemon_sock"
# First remote tune is cold; the identical repeat must answer from the
# daemon's in-memory tuned-results index.
cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
    --remote "$daemon_sock" > "$obs_tmp/remote-cold.txt"
grep -q 'warm start         : no' "$obs_tmp/remote-cold.txt"
cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
    --remote "$daemon_sock" > "$obs_tmp/remote-warm.txt"
grep -q 'warm start         : yes' "$obs_tmp/remote-warm.txt"
cargo run --release -p ifko-cli -- daemon metrics --socket "$daemon_sock" \
    > "$obs_tmp/daemon-metrics.txt"
grep -q ifkod_requests_total "$obs_tmp/daemon-metrics.txt"
# Pack the daemon's winners, re-verify them into a fresh results dir,
# and check the import warm-starts the next local tune there.
cargo run --release -p ifko-cli -- pack --socket "$daemon_sock" \
    --out "$obs_tmp/tunes.ifko"
cargo run --release -p ifko-cli -- install "$obs_tmp/tunes.ifko" \
    --db "$obs_tmp/freshdb" > "$obs_tmp/install.txt"
grep -q 'installed 1 record(s)' "$obs_tmp/install.txt"
cargo run --release -p ifko-cli -- tune kernels/ddot.hil --n 1024 \
    --db "$obs_tmp/freshdb" > "$obs_tmp/fresh-warm.txt"
grep -q 'strategy           : warm' "$obs_tmp/fresh-warm.txt"
cargo run --release -p ifko-cli -- db stats --db "$obs_tmp/freshdb" \
    > "$obs_tmp/freshdb-stats.txt"
grep -q 'live records : 1' "$obs_tmp/freshdb-stats.txt"
cargo run --release -p ifko-cli -- daemon stop --socket "$daemon_sock"
wait "$daemon_pid"
trap 'rm -rf "$obs_tmp"' EXIT

step "harness smoke: figure7 --quick (sample trace)"
cargo run --release -p ifko-bench --bin figure7 -- --quick >/dev/null
test -s results/traces/figure7-quick.jsonl

step "pipeline throughput vs committed baseline (bench_compare)"
# Short reps keep the gate fast; rates are calibration-normalized, so a
# slower machine than the baseline's is fine. IFKO_BENCH_TOL loosens
# the 10% floor; IFKO_BENCH_ATTEMPTS bounds re-benching on transient
# host slowdowns.
IFKO_BENCH_SECS="${IFKO_BENCH_SECS:-0.25}" scripts/bench_compare.sh

printf '\nAll checks passed.\n'
