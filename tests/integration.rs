//! Workspace-level integration tests: the full pipeline from HIL source
//! through FKO, the search, the baselines and the harness, exercised
//! together across crates.

use ifko::prelude::*;
use ifko::runner::{run_once, KernelArgs};
use ifko::verify;
use ifko_baselines::{atlas_best, compile_gcc, compile_icc, compile_icc_prof, LoopForm, Method};
use ifko_bench::{run_methods, ExpConfig};
use ifko_blas::hil_src::hil_source;
use ifko_blas::ops::BlasOp;
use ifko_fko::compile_defaults;

/// Every kernel, every precision, every machine, both contexts: FKO
/// defaults compile, run, and verify.
#[test]
fn defaults_verify_everywhere() {
    let w = Workload::generate(700, 42);
    for mach in [p4e(), opteron()] {
        for k in ALL_KERNELS {
            for ctx in [Context::OutOfCache, Context::InL2] {
                let src = hil_source(k.op, k.prec);
                let c = compile_defaults(&src, &mach)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", mach.name, k.name()));
                let out = run_once(
                    &c,
                    &KernelArgs {
                        kernel: k,
                        workload: &w,
                        context: ctx,
                    },
                    &mach,
                )
                .unwrap_or_else(|e| panic!("{} {}: {e}", mach.name, k.name()));
                verify(k, &w, &out)
                    .unwrap_or_else(|e| panic!("{} {} {:?}: {e}", mach.name, k.name(), ctx));
            }
        }
    }
}

/// The tuned kernel never loses to FKO defaults, on any kernel or machine.
#[test]
fn tuning_never_hurts() {
    for mach in [p4e(), opteron()] {
        let tc = TuneConfig::quick(2500).machine(mach.clone());
        for k in ALL_KERNELS {
            let t = tc
                .tune(k)
                .unwrap_or_else(|e| panic!("{} {}: {e}", mach.name, k.name()));
            assert!(
                t.result.best_cycles <= t.result.default_cycles,
                "{} {}: tuned {} > default {}",
                mach.name,
                k.name(),
                t.result.best_cycles,
                t.result.default_cycles
            );
        }
    }
}

/// All baselines verify on both machines (spot sizes).
#[test]
fn baselines_verify_on_both_machines() {
    let w = Workload::generate(900, 17);
    for mach in [p4e(), opteron()] {
        for k in ALL_KERNELS {
            for (label, c) in [
                ("gcc", compile_gcc(k, &mach)),
                ("icc", compile_icc(k, &mach, LoopForm::Friendly)),
                ("icc+prof", compile_icc_prof(k, &mach, 900)),
            ] {
                let c = c.unwrap_or_else(|e| panic!("{label} {}: {e}", k.name()));
                let out = run_once(
                    &c,
                    &KernelArgs {
                        kernel: k,
                        workload: &w,
                        context: Context::OutOfCache,
                    },
                    &mach,
                )
                .unwrap();
                verify(k, &w, &out)
                    .unwrap_or_else(|e| panic!("{label} {} on {}: {e}", k.name(), mach.name));
            }
            let choice = atlas_best(k, &mach, Context::OutOfCache, &w, &Timer::exact())
                .unwrap_or_else(|| panic!("atlas {}: no variant", k.name()));
            assert!(choice.cycles > 0);
        }
    }
}

/// Different problem sizes exercise main loop + remainder combinations for
/// a tuned (vectorized + unrolled) kernel.
#[test]
fn tuned_kernel_correct_across_sizes() {
    let mach = p4e();
    let k = Kernel {
        op: BlasOp::Dot,
        prec: Prec::S,
    };
    let t = TuneConfig::quick(4096).tune(k).unwrap();
    for n in [0usize, 1, 2, 3, 5, 31, 63, 64, 65, 127, 1000] {
        let w = Workload::generate(n, n as u64);
        let out = run_once(
            &t.compiled,
            &KernelArgs {
                kernel: k,
                workload: &w,
                context: Context::OutOfCache,
            },
            &mach,
        )
        .unwrap();
        verify(k, &w, &out).unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

/// The harness produces a complete six-method row and ifko is never the
/// worst method.
#[test]
fn harness_row_is_complete_and_sane() {
    let mut cfg = ExpConfig::new(true);
    (cfg.n_out_of_cache, cfg.n_in_l2, cfg.seed) = (2500, 512, 3);
    for k in [
        Kernel {
            op: BlasOp::Axpy,
            prec: Prec::D,
        },
        Kernel {
            op: BlasOp::Iamax,
            prec: Prec::S,
        },
    ] {
        let row = run_methods(k, &p4e(), Context::OutOfCache, &cfg);
        for m in Method::all() {
            assert!(row.cycles.contains_key(&m), "{}: missing {m:?}", k.name());
        }
        let ifko_c = row.cycles[&Method::Ifko];
        let worst = row.cycles.values().copied().max().unwrap();
        assert!(
            ifko_c < worst || row.cycles.values().all(|&c| c == ifko_c),
            "{}: ifko ({ifko_c}) is the worst method",
            k.name()
        );
    }
}

/// Tuning adapts to context: the parameters chosen in-L2 differ from the
/// out-of-cache ones for at least some kernels (the paper's §3.3 "adapting
/// to context" claim).
#[test]
fn parameters_adapt_to_context() {
    let mut any_diff = false;
    for k in [
        Kernel {
            op: BlasOp::Asum,
            prec: Prec::D,
        },
        Kernel {
            op: BlasOp::Dot,
            prec: Prec::D,
        },
        Kernel {
            op: BlasOp::Copy,
            prec: Prec::D,
        },
    ] {
        let oc = TuneConfig::quick(20_000).tune(k).unwrap();
        let ic = TuneConfig::quick(1024)
            .context(Context::InL2)
            .tune(k)
            .unwrap();
        if oc.table3_row != ic.table3_row {
            any_diff = true;
        }
    }
    assert!(
        any_diff,
        "in-L2 and out-of-cache tuning should diverge somewhere"
    );
}
