//! Reproduction-shape tests: the paper's qualitative claims, asserted at
//! reduced (CI-friendly) scale. These are the claims DESIGN.md commits to:
//!
//! 1. iFKO provides the best performance *on average* in every
//!    machine/context chart (Figures 2-4);
//! 2. ATLAS's hand-vectorized assembly wins `isamax` (neither icc nor
//!    iFKO vectorize the branchy loop);
//! 3. icc+prof collapses on Opteron swap/axpy (blind non-temporal writes
//!    on read-write operands) but not on the P4E;
//! 4. empirical tuning of prefetch distance is the largest average
//!    contributor out-of-cache (Figure 7's [WNT, PF DST, PF INS, UR, AE]
//!    = [2, 26, 3, 2, 5]%);
//! 5. accumulator expansion matters in-cache for the reductions (paper:
//!    41% of sasum's in-cache tuning gain);
//! 6. iFKO beats FKO's static defaults overall (paper: 1.38x average).

use ifko::prelude::*;
use ifko_baselines::Method;
use ifko_bench::{averages, run_methods, ExpConfig};
use ifko_blas::ops::BlasOp;

fn cfg() -> ExpConfig {
    ExpConfig::new(true) // quick: N=20_000 / 1024, paper seed
}

#[test]
fn claim1_ifko_best_on_average_everywhere() {
    // The paper's claim is over the full 14-kernel suite; a subset
    // over-weights the kernels ATLAS's assembly wins (iamax, copy).
    let c = cfg();
    for (mach, ctx) in [
        (p4e(), Context::OutOfCache),
        (opteron(), Context::OutOfCache),
        (p4e(), Context::InL2),
    ] {
        let rows: Vec<_> = ALL_KERNELS
            .iter()
            .map(|k| run_methods(*k, &mach, ctx, &c))
            .collect();
        let (ifko_avg, _) = averages(&rows, Method::Ifko);
        for m in Method::all() {
            if m == Method::Ifko {
                continue;
            }
            let (avg, _) = averages(&rows, m);
            assert!(
                ifko_avg >= avg,
                "{} {:?}: ifko avg {ifko_avg:.1} < {} avg {avg:.1}",
                mach.name,
                ctx,
                m.label()
            );
        }
    }
}

#[test]
fn claim2_atlas_assembly_wins_isamax() {
    let c = cfg();
    let k = Kernel {
        op: BlasOp::Iamax,
        prec: Prec::S,
    };
    for mach in [p4e(), opteron()] {
        let row = run_methods(k, &mach, Context::OutOfCache, &c);
        let atlas = row.cycles[&Method::Atlas];
        let ifko = row.cycles[&Method::Ifko];
        assert!(
            atlas < ifko,
            "{}: hand-vectorized isamax ({atlas}) must beat ifko ({ifko})",
            mach.name
        );
        assert!(
            row.atlas_variant.as_deref().unwrap_or("").ends_with('*'),
            "ATLAS must have selected the assembly variant"
        );
    }
}

#[test]
fn claim3_icc_prof_pathology_is_opteron_specific() {
    let mut c = ExpConfig::new(true);
    c.n_out_of_cache = 80_000;
    let k = Kernel {
        op: BlasOp::Swap,
        prec: Prec::D,
    };
    let row_o = run_methods(k, &opteron(), Context::OutOfCache, &c);
    let ratio_o = row_o.cycles[&Method::IccProf] as f64 / row_o.cycles[&Method::IccRef] as f64;
    assert!(
        ratio_o > 2.0,
        "Opteron dswap icc+prof/icc = {ratio_o:.2} (want > 2)"
    );
    let row_p = run_methods(k, &p4e(), Context::OutOfCache, &c);
    let ratio_p = row_p.cycles[&Method::IccProf] as f64 / row_p.cycles[&Method::IccRef] as f64;
    assert!(
        ratio_p < 2.0,
        "P4E dswap icc+prof/icc = {ratio_p:.2} (want < 2)"
    );
    assert!(
        ratio_o > 1.5 * ratio_p,
        "pathology must be Opteron-specific"
    );
}

#[test]
fn claim4_prefetch_distance_dominates_out_of_cache() {
    // Average the Figure 7 phase gains over the reduction/streaming
    // kernels out-of-cache on the P4E: PF DST must contribute the most.
    let tc = TuneConfig::quick(20_000);
    let mut sums: std::collections::HashMap<Phase, f64> = Default::default();
    let kernels = [
        Kernel {
            op: BlasOp::Dot,
            prec: Prec::D,
        },
        Kernel {
            op: BlasOp::Asum,
            prec: Prec::D,
        },
        Kernel {
            op: BlasOp::Scal,
            prec: Prec::S,
        },
        Kernel {
            op: BlasOp::Axpy,
            prec: Prec::D,
        },
    ];
    for k in kernels {
        let t = tc.tune(k).unwrap();
        for g in &t.result.gains {
            *sums.entry(g.phase).or_insert(0.0) += g.speedup() - 1.0;
        }
    }
    let pf = sums.get(&Phase::PfDist).copied().unwrap_or(0.0);
    for (p, v) in &sums {
        if *p == Phase::PfDist {
            continue;
        }
        assert!(
            pf >= *v,
            "PF DST ({pf:.3}) must dominate {p:?} ({v:.3}) out-of-cache"
        );
    }
    assert!(pf > 0.2, "PF DST should average a solid gain, got {pf:.3}");
}

#[test]
fn claim5_accumulator_expansion_matters_in_cache() {
    let k = Kernel {
        op: BlasOp::Asum,
        prec: Prec::S,
    };
    let t = TuneConfig::quick(1024)
        .context(Context::InL2)
        .tune(k)
        .unwrap();
    assert!(
        t.result.best.accum_expand > 1,
        "sasum in-L2 should choose AE > 1 (got {:?})",
        t.result.best
    );
    let ae_gain = t
        .result
        .gains
        .iter()
        .find(|g| g.phase == Phase::Ae)
        .map(|g| g.speedup())
        .unwrap_or(1.0);
    assert!(
        ae_gain > 1.1,
        "AE should contribute >10% in-cache, got {ae_gain:.3}"
    );
}

#[test]
fn claim6_ifko_beats_fko_defaults_overall() {
    let mut total = 0.0;
    let mut count = 0;
    for mach in [p4e(), opteron()] {
        let tc = TuneConfig::quick(8_000).machine(mach);
        for k in ALL_KERNELS.iter().step_by(3) {
            let t = tc.tune(*k).unwrap();
            total += t.result.speedup_over_default();
            count += 1;
        }
    }
    let avg = total / count as f64;
    assert!(
        avg > 1.15,
        "ifko should average a clear speedup over FKO defaults (paper 1.38x), got {avg:.2}x"
    );
}
